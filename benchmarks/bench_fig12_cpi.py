"""Regenerates Figure 12: native perf CPI vs Sniper on simulation points."""

from conftest import run_once

from repro.experiments import render_fig12, run_fig12


def test_fig12(benchmark):
    result = run_once(benchmark, run_fig12)
    print()
    print(render_fig12(result))
    # Paper: 2.59 % average CPI error for Regional runs; Reduced runs
    # deviate more (13.9 % average) with pronounced outliers.
    assert result.average_regional_error_pct < 6.0
    assert result.average_reduced_error_pct > result.average_regional_error_pct
    assert result.worst_outlier.reduced_error_pct > \
        2 * result.average_regional_error_pct
    # Every benchmark's Regional CPI lands near native (no blow-ups).
    assert all(r.regional_error_pct < 20 for r in result.rows)
