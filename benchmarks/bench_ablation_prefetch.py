"""Ablation: sequential prefetching under the allcache hierarchy.

Does a hardware prefetcher change the paper's conclusions?  Whole and
regional runs are replayed with a next-line L2/L3 prefetcher; prefetching
lowers absolute miss rates, but the whole-vs-regional cold-start gap — the
paper's warning — persists.
"""

import numpy as np

from conftest import run_once

from repro.cache.prefetch import PrefetchingHierarchy
from repro.config import ALLCACHE_SIM
from repro.experiments.common import pinpoints_for
from repro.experiments.report import format_table
from repro.pin import AllCache
from repro.stats.compare import weighted_average

BENCHMARKS = ["505.mcf_r", "623.xalancbmk_s"]


def measure(out, prefetch, regional):
    def fresh_tool():
        if prefetch:
            return AllCache(
                hierarchy=PrefetchingHierarchy(ALLCACHE_SIM, degree=2)
            )
        return AllCache()

    replayer = out.replayer()
    if not regional:
        tool = fresh_tool()
        replayer.replay(out.whole, [tool])
        return tool.stats()["L2"].miss_rate, tool.stats()["L3"].miss_rate
    l2_rates, l3_rates, weights = [], [], []
    for pb in out.regional:
        tool = fresh_tool()
        replayer.replay(pb, [tool])
        stats = tool.stats()
        l2_rates.append(stats["L2"].miss_rate)
        l3_rates.append(stats["L3"].miss_rate)
        weights.append(pb.weight)
    return (weighted_average(l2_rates, weights),
            weighted_average(l3_rates, weights))


def sweep():
    rows = {}
    for name in BENCHMARKS:
        out = pinpoints_for(name)
        rows[name] = {
            "base_whole": measure(out, prefetch=False, regional=False),
            "base_regional": measure(out, prefetch=False, regional=True),
            "pf_whole": measure(out, prefetch=True, regional=False),
            "pf_regional": measure(out, prefetch=True, regional=True),
        }
    return rows


def test_ablation_prefetch(benchmark):
    rows = run_once(benchmark, sweep)
    table = []
    for name, r in rows.items():
        table.append(
            (name,
             f"{r['base_whole'][1] * 100:.1f}%",
             f"{r['pf_whole'][1] * 100:.1f}%",
             f"{(r['base_regional'][1] - r['base_whole'][1]) * 100:+.1f}",
             f"{(r['pf_regional'][1] - r['pf_whole'][1]) * 100:+.1f}")
        )
    print()
    print(format_table(
        ["Benchmark", "L3 whole", "L3 whole +pf",
         "cold gap (pp)", "cold gap +pf (pp)"],
        table,
        title="Ablation -- next-line prefetching vs the cold-start gap",
    ))
    for name, r in rows.items():
        # Prefetching reduces the whole-run L2 miss rate...
        assert r["pf_whole"][0] < r["base_whole"][0], name
        # ...but the regional cold-start L3 gap persists: prefetching is
        # not a substitute for cache warming.
        base_gap = r["base_regional"][1] - r["base_whole"][1]
        pf_gap = r["pf_regional"][1] - r["pf_whole"][1]
        assert pf_gap > 0.05, name
        assert pf_gap > base_gap / 3, name
