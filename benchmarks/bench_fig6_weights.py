"""Regenerates Figure 6: simulation-point weight distributions."""

from conftest import run_once

from repro.experiments import render_fig6, run_fig6


def test_fig6(benchmark):
    result = run_once(benchmark, run_fig6)
    print()
    print(render_fig6(result))
    rows = result.by_benchmark()
    # bwaves_r: one dominant point, top-3 covering most of execution
    # (the paper's low-diversity example).
    bwaves = rows["503.bwaves_r"]
    assert bwaves.dominant_weight > 0.25
    assert bwaves.top3_weight > 0.6
    # deepsjeng_s / exchange2_s / povray_r: flat profiles needing many
    # points (the paper's high-diversity examples).
    for name in ("631.deepsjeng_s", "648.exchange2_s", "511.povray_r"):
        assert rows[name].dominant_weight < 0.2, name
        assert rows[name].cut >= 10, name
    # Structural invariants across the suite.
    for row in result.rows:
        assert abs(sum(row.weights) - 1.0) < 1e-9
        assert sum(row.weights[: row.cut]) >= 0.9
