"""Extension: warming strategies — cold vs prefix warmup vs double run."""

from conftest import run_once

from repro.cache.warming import compare_warming_strategies
from repro.experiments.common import pinpoints_for
from repro.experiments.report import format_table

BENCHMARKS = ["505.mcf_r", "623.xalancbmk_s", "541.leela_r"]


def sweep():
    return {
        name: compare_warming_strategies(pinpoints_for(name))
        for name in BENCHMARKS
    }


def test_ext_warming_strategies(benchmark):
    results = run_once(benchmark, sweep)
    rows = []
    for name, deltas in results.items():
        rows.append(
            (name,
             f"{deltas['cold']['L3']:+.2f}",
             f"{deltas['prefix']['L3']:+.2f}",
             f"{deltas['double-run']['L3']:+.2f}")
        )
    print()
    print(format_table(
        ["Benchmark", "cold L3 (pp)", "prefix warm L3 (pp)",
         "double-run L3 (pp)"],
        rows,
        title="Extension -- L3 miss-rate delta vs Whole Run by warming "
              "strategy (paper Section IV-D mitigations)",
    ))
    for name, deltas in results.items():
        assert deltas["prefix"]["L3"] < deltas["cold"]["L3"] / 2, name
        assert deltas["double-run"]["L3"] < deltas["cold"]["L3"], name
