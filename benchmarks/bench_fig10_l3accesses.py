"""Regenerates Figure 10: L3 access counts per run type."""

from conftest import run_once

from repro.experiments import render_fig10, run_fig10


def test_fig10(benchmark):
    result = run_once(benchmark, run_fig10)
    print()
    print(render_fig10(result))
    # Whole runs exercise the LLC far more than sampled replays — the
    # paper's explanation for the Fig 8 L3 miss-rate discrepancy.
    for row in result.rows:
        assert row.whole > row.regional, row.benchmark
        assert row.regional >= row.reduced, row.benchmark
    assert result.average_ratio > 5
