"""Extension: SimPoint vs random/systematic/stratified/prefix sampling."""

from conftest import run_once

from repro.experiments import render_baselines, run_baselines

# A representative cross-section: skewed, flat, memory- and compute-bound.
BENCHMARKS = ["503.bwaves_r", "505.mcf_r", "541.leela_r", "623.xalancbmk_s",
              "631.deepsjeng_s", "511.povray_r"]


def test_ext_baselines(benchmark):
    result = run_once(benchmark, lambda: run_baselines(BENCHMARKS))
    print()
    print(render_baselines(result))
    # SimPoint's phase-aware selection must decisively beat prefix
    # sampling and be competitive with (or better than) blind sampling.
    assert result.average_mix_error("simpoint") < \
        result.average_mix_error("prefix") / 2
    assert result.average_mix_error("simpoint") <= \
        result.average_mix_error("random") + 0.05
    assert result.average_mix_error("simpoint") < 1.0
