"""Extension: table-based branch predictors vs the analytic entropy model."""

import numpy as np

from conftest import run_once

from repro.experiments.report import format_table
from repro.sniper.branch import (
    BimodalPredictor,
    GSharePredictor,
    StaticTakenPredictor,
    simulate_slice_mispredicts,
)
from repro.workloads.spec2017 import build_program

BENCHMARKS = ["541.leela_r", "519.lbm_r"]
PREDICTORS = ("static", "bimodal", "gshare")


def sweep():
    results = {}
    for name in BENCHMARKS:
        program = build_program(name, total_slices=200)
        predictors = {
            "static": StaticTakenPredictor(),
            "bimodal": BimodalPredictor(),
            "gshare": GSharePredictor(),
        }
        mispredicts = {p: 0 for p in PREDICTORS}
        branches = 0
        for trace in program.iter_slices():
            branches += trace.branch_count
            for key, predictor in predictors.items():
                mispredicts[key] += simulate_slice_mispredicts(
                    predictor, trace
                )
        results[name] = {
            key: mispredicts[key] / branches for key in PREDICTORS
        }
    return results


def test_ext_branch_predictors(benchmark):
    results = run_once(benchmark, sweep)
    rows = [
        (name, *[f"{rates[p] * 100:.2f}%" for p in PREDICTORS])
        for name, rates in results.items()
    ]
    print()
    print(format_table(
        ["Benchmark", *PREDICTORS],
        rows,
        title="Extension -- misprediction rate by predictor",
    ))
    for name, rates in results.items():
        # Per-PC learning pays off on the per-PC Markov streams.
        assert rates["bimodal"] < rates["static"] / 2, name
        assert rates["bimodal"] < 0.5
        # GShare's global history carries no information here — the
        # synthetic branches are mutually uncorrelated by construction —
        # so history only aliases the table and gshare degrades to
        # roughly static accuracy.  (An instructive negative result:
        # history-based predictors need inter-branch correlation.)
        assert rates["gshare"] <= rates["static"] + 0.02, name
        assert rates["gshare"] > rates["bimodal"], name
    # leela (INT, branchy, higher entropy) mispredicts more than lbm (FP).
    assert results["541.leela_r"]["bimodal"] > \
        results["519.lbm_r"]["bimodal"]
