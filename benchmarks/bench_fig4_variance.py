"""Regenerates Figure 4: within-cluster variance vs cluster budget."""

from conftest import run_once

from repro.experiments import render_fig4, run_fig4


def test_fig4(benchmark):
    result = run_once(benchmark, run_fig4)
    print()
    print(render_fig4(result))
    # Restricting the cluster budget forces dissimilar phases together:
    # variance at k=5 must dominate variance at k=35 for every benchmark.
    for name, curve in result.curves.items():
        assert curve[5] >= curve[35], name
    # And the suite-wide effect is strong (>= 5x on average).
    ratios = [
        curve[5] / curve[35]
        for curve in result.curves.values() if curve[35] > 0
    ]
    assert sum(ratios) / len(ratios) > 5.0
