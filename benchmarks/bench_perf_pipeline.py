"""Times the fig7+fig8+fig10 sweep: serial vs parallel vs warm store.

Three timed passes over the full-suite sweep, all against a private
artifact store so prior runs cannot contaminate the cold measurements:

1. serial cold   -- ``jobs=1``, both cache tiers empty
2. parallel cold -- ``jobs=`` all cores, both tiers empty again
3. warm          -- memory tier dropped (as a fresh process would see),
                    every artifact served from the disk store

Timing runs on the telemetry clock, and the serial cold pass records a
full trace, so alongside the top-level wall numbers the record carries a
per-stage breakdown (pipeline / cache-sim / sniper / store-io) summed
from the recorded spans.

The numbers land in ``BENCH_pipeline.json`` at the repository root (the
perf trajectory the acceptance criteria track) with the span-level
manifest next to it in ``BENCH_trace_summary.json``, and the rendered
output of all three passes must be byte-identical — speed never changes
results.

A fourth timed section covers the linter: a cold self-application of
``repro-lint`` over ``src/repro`` (per-file rules + the whole-program
flow pass) and a warm re-run against the same summary store, split into
the ``lint.per_file`` / ``lint.flow`` telemetry spans.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import telemetry
from repro.experiments import common
from repro.experiments.common import clear_pinpoints_cache, configure_cache, set_store
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.parallel import resolve_jobs
from repro.telemetry.clock import monotonic_ns

_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = _ROOT / "BENCH_pipeline.json"
TRACE_SUMMARY_PATH = _ROOT / "BENCH_trace_summary.json"

#: Span-name prefixes folded into each reported stage.  ``cache_sim``
#: sums only the top-level replay spans: the fused engine emits nested
#: ``cache.fused`` drain spans inside ``cache.replay``, and a ``cache.``
#: prefix would count that time twice.
_STAGES = {
    "pipeline": ("pinpoints.",),
    "cache_sim": ("cache.replay",),
    "sniper": ("sniper.",),
    "store_io": ("store.",),
}

#: Serial-cold per-stage time budgets in seconds, with headroom over the
#: measured baseline (see BENCH_pipeline.json).  A stage exceeding its
#: budget by more than ``_BUDGET_TOLERANCE`` fails the run when
#: ``REPRO_BENCH_ENFORCE`` is set (the CI bench-smoke job sets it);
#: otherwise overruns only show up in the recorded report.
_BUDGETS = {
    "pipeline": 30.0,
    "cache_sim": 12.5,
    "sniper": 1.0,
    "store_io": 1.0,
}
_BUDGET_TOLERANCE = 1.2
_ENFORCE_ENV = "REPRO_BENCH_ENFORCE"


def _enforcing() -> bool:
    return os.environ.get(_ENFORCE_ENV, "").lower() not in ("", "0", "false")


def _sweep(jobs: int) -> str:
    return "\n".join([
        render_fig7(run_fig7(jobs=jobs)),
        render_fig8(run_fig8(jobs=jobs)),
        render_fig10(run_fig10(jobs=jobs)),
    ])


def _drop_memory_tier() -> None:
    """What a new process sees: empty dicts, a populated disk store."""
    common._PINPOINTS_CACHE.clear()
    common._WHOLE_CACHE.clear()
    common._POINTS_CACHE.clear()


def _timed(fn):
    start = monotonic_ns()
    result = fn()
    return result, (monotonic_ns() - start) / 1e9


def _stage_breakdown(recorder: telemetry.TraceRecorder) -> dict:
    """Seconds spent per stage, summed over the recorder's spans.

    Stages overlap (store reads happen inside pipeline spans), so the
    breakdown localizes time rather than summing to the wall total.
    """
    totals = {stage: 0 for stage in _STAGES}
    for event in recorder.events:
        for stage, prefixes in _STAGES.items():
            if event["name"].startswith(prefixes):
                totals[stage] += event["dur"]
    return {stage: round(ns / 1e9, 3) for stage, ns in totals.items()}


def _span_seconds(recorder: telemetry.TraceRecorder, name: str) -> float:
    total = sum(e["dur"] for e in recorder.events if e["name"] == name)
    return round(total / 1e9, 3)


def _lint_benchmark(tmp_path: Path) -> dict:
    """Cold + warm repro-lint self-application over ``src/repro``."""
    from repro.lint import lint_paths, load_config
    from repro.parallel.store import ArtifactStore

    config = load_config(start=_ROOT)
    store = ArtifactStore(tmp_path / "lint-flow")
    target = _ROOT / "src" / "repro"

    def run():
        recorder = telemetry.TraceRecorder()
        with telemetry.using_recorder(recorder):
            _, wall_s = _timed(
                lambda: lint_paths([target], config, flow_store=store)
            )
        return {
            "wall_s": round(wall_s, 3),
            "per_file_s": _span_seconds(recorder, "lint.per_file"),
            "flow_s": _span_seconds(recorder, "lint.flow"),
            "flow_summary_hits": recorder.metrics.counters.get(
                "flow.summary.hit", 0
            ),
        }

    return {"cold": run(), "warm": run()}


def test_pipeline_serial_parallel_warm(tmp_path):
    cores = resolve_jobs(None)
    jobs = resolve_jobs(None)
    previous = configure_cache(tmp_path / "store")
    recorder = telemetry.TraceRecorder()
    try:
        clear_pinpoints_cache()
        with telemetry.using_recorder(recorder):
            serial, serial_cold_s = _timed(lambda: _sweep(jobs=1))

        clear_pinpoints_cache()
        parallel, parallel_cold_s = _timed(lambda: _sweep(jobs=jobs))

        _drop_memory_tier()
        warm, warm_s = _timed(lambda: _sweep(jobs=1))
    finally:
        set_store(previous)

    from repro.cache.fused import resolve_backend

    identical = serial == parallel == warm
    record = {
        "bench": "fig7+fig8+fig10 full-suite sweep",
        "cores": cores,
        "jobs_parallel": jobs,
        "cache_backend": resolve_backend(),
        "serial_cold_s": round(serial_cold_s, 3),
        "parallel_cold_s": round(parallel_cold_s, 3),
        "warm_s": round(warm_s, 3),
        "parallel_speedup": round(serial_cold_s / parallel_cold_s, 2),
        "warm_speedup": round(serial_cold_s / warm_s, 2),
        "outputs_identical": identical,
        "serial_cold_stages_s": _stage_breakdown(recorder),
        "budgets": {
            "tolerance": _BUDGET_TOLERANCE,
            "stages_s": dict(_BUDGETS),
            "enforced": _enforcing(),
        },
        "lint": _lint_benchmark(tmp_path),
    }
    # The chaos section is owned by tools/chaos_smoke.sh (it merges the
    # measured scenario wall time in); rewriting the manifest here must
    # not discard it.
    try:
        record["chaos"] = json.loads(RESULT_PATH.read_text())["chaos"]
    except (OSError, ValueError, KeyError):
        pass
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    manifest = telemetry.summarize(recorder)
    telemetry.write_summary(TRACE_SUMMARY_PATH, manifest)
    print()
    print(json.dumps(record, indent=2))

    assert identical
    # The warm pass replays nothing: every pipeline and every metrics
    # bundle comes back from the store.
    assert record["warm_speedup"] >= 5.0
    # Per-benchmark fan-out only pays off with real cores under it.
    if cores >= 4:
        assert record["parallel_speedup"] >= 2.0
    # The trace accounts for the bulk of the serial pass: the pipeline
    # and cache-sim stages dominate a cold sweep.
    stages = record["serial_cold_stages_s"]
    assert stages["pipeline"] > 0.0
    assert stages["cache_sim"] > 0.0
    # Per-stage budget gate: opt-in so developer laptops and loaded CI
    # runners do not flake, mandatory where REPRO_BENCH_ENFORCE is set.
    if _enforcing():
        for stage, budget in _BUDGETS.items():
            assert stages[stage] <= budget * _BUDGET_TOLERANCE, (
                f"stage {stage!r} took {stages[stage]}s, budget "
                f"{budget}s (tolerance x{_BUDGET_TOLERANCE})"
            )
    # Warm lint serves every module summary from the store.
    lint = record["lint"]
    assert lint["cold"]["flow_summary_hits"] == 0
    assert lint["warm"]["flow_summary_hits"] > 0
    assert lint["warm"]["wall_s"] <= lint["cold"]["wall_s"]
