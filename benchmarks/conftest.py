"""Benchmark-harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper at the
full calibrated configuration, prints the rendered result, and asserts
the headline shape claims.  Expensive intermediates (pipelines, whole-run
replays) are shared through ``repro.experiments.common``'s caches, so the
files cooperate when run together (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic whole-suite sweeps taking seconds to
    minutes; statistical repetition would only re-measure caching.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session", autouse=True)
def _report_header():
    print("\n=== SPEC CPU2017 sampling-efficacy reproduction: benchmark "
          "harness ===")
    yield
