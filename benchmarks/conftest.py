"""Benchmark-harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper at the
full calibrated configuration, prints the rendered result, and asserts
the headline shape claims.  Expensive intermediates (pipelines, whole-run
replays) are shared through ``repro.experiments.common``'s caches, so the
files cooperate when run together (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--cache-backend", action="store", default=None,
        help="cache-simulation backend for the bench run "
             "(numpy | fused | native | numba | auto)",
    )


@pytest.fixture(scope="session", autouse=True)
def _cache_backend(request):
    """Validate/pin the backend before any bench collects timings.

    Same early-failure contract as the CLI: a typo'd --cache-backend or
    REPRO_CACHE_BACKEND value aborts the session at startup instead of
    surfacing minutes into the first sweep.
    """
    from repro.cache.fused import apply_backend
    from repro.errors import ConfigError

    try:
        apply_backend(request.config.getoption("--cache-backend"))
    except ConfigError as exc:
        pytest.exit(f"invalid cache backend: {exc}", returncode=4)
    yield


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic whole-suite sweeps taking seconds to
    minutes; statistical repetition would only re-measure caching.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session", autouse=True)
def _report_header():
    print("\n=== SPEC CPU2017 sampling-efficacy reproduction: benchmark "
          "harness ===")
    yield


@pytest.fixture(scope="session", autouse=True)
def _artifact_store():
    """Persist expensive intermediates in the on-disk artifact store.

    First run of the harness populates it (REPRO_CACHE_DIR or
    ``~/.cache/repro-spec2017``); repeated local runs then skip pipeline
    and replay recomputation entirely.
    """
    from repro.experiments.common import configure_cache, set_store

    previous = configure_cache()
    yield
    set_store(previous)
