"""Ablation: random-projection dimensionality.

SimPoint 3.0 projects BBVs to 15 dimensions.  Too few dimensions collapse
distinct phases together (Johnson-Lindenstrauss distortion grows), while
more dimensions buy little once the phase structure is separable.
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.pin import BBVProfiler, Engine
from repro.simpoint import SimPointAnalysis
from repro.workloads.spec2017 import build_program, get_descriptor

BENCHMARKS = ["502.gcc_r", "605.mcf_s", "623.xalancbmk_s", "508.namd_r"]
DIMS = (2, 4, 15, 64)


def sweep():
    matrices = {}
    for name in BENCHMARKS:
        program = build_program(name)
        profiler = BBVProfiler(program.block_sizes)
        Engine([profiler]).run(program.iter_slices())
        matrices[name] = (profiler.matrix(), profiler.slice_indices())

    errors = {}
    for dim in DIMS:
        per_benchmark = []
        for name in BENCHMARKS:
            descriptor = get_descriptor(name)
            matrix, indices = matrices[name]
            analysis = SimPointAnalysis(
                seed=descriptor.seed, projection_dim=dim
            )
            result = analysis.analyze(matrix, indices)
            per_benchmark.append(abs(result.k - descriptor.num_phases))
        errors[dim] = per_benchmark
    return errors


def test_ablation_projection_dim(benchmark):
    errors = run_once(benchmark, sweep)
    rows = [
        (dim, *errs, f"{sum(errs) / len(errs):.2f}")
        for dim, errs in errors.items()
    ]
    print()
    print(format_table(
        ["dim", *[b.split(".")[1] for b in BENCHMARKS], "mean |k err|"],
        rows,
        title="Ablation -- projection dimensionality vs phase-count error",
    ))
    mean = {d: sum(e) / len(e) for d, e in errors.items()}
    # 2 dimensions cannot hold 15-28 separated phases; 15 is enough.
    assert mean[2] > mean[15]
    assert mean[15] == 0.0
    # Going beyond 15 dims does not unlock further accuracy.
    assert mean[64] <= mean[2]
