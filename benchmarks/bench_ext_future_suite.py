"""Extension: projected Table II for the full 43-workload suite."""

from conftest import run_once

from repro.experiments import render_future_suite, run_future_suite


def test_ext_future_suite(benchmark):
    result = run_once(benchmark, run_future_suite)
    print()
    print(render_future_suite(result))
    assert len(result.rows) == 43
    # The identical pipeline digests all 43 workloads and stays
    # self-consistent (Table II rows reproduce the paper; projected rows
    # reproduce their documented projections).
    inconsistent = [r.benchmark for r in result.rows if not r.consistent]
    assert inconsistent == []
    # The paper's cross-generation observation: the average number of
    # simulation points stays in the ~20 class for the full suite too.
    assert 17 < result.average_points < 23
    assert 9 < result.average_points_90 < 14
