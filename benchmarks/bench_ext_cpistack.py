"""Extension: CPI stacks of the simulated machine (Sniper-style)."""

from conftest import run_once

from repro.experiments.common import pinpoints_for
from repro.experiments.report import format_table
from repro.sniper import SniperSimulator
from repro.stats.compare import weighted_average

BENCHMARKS = ["505.mcf_r", "541.leela_r", "648.exchange2_s", "503.bwaves_r"]
COMPONENTS = ("base", "dependency", "branch", "memory")


def sweep():
    simulator = SniperSimulator()
    stacks = {}
    for name in BENCHMARKS:
        out = pinpoints_for(name)
        per_component = {c: [] for c in COMPONENTS}
        weights = []
        for pb in out.regional:
            timing = simulator.run_region(
                pb.replay_slices(out.program),
                warmup=pb.warmup_traces(out.program),
            )
            stack = timing.cpi_stack()
            for component in COMPONENTS:
                per_component[component].append(stack[component])
            weights.append(pb.weight)
        stacks[name] = {
            c: weighted_average(per_component[c], weights)
            for c in COMPONENTS
        }
    return stacks


def test_ext_cpi_stack(benchmark):
    stacks = run_once(benchmark, sweep)
    rows = []
    for name, stack in stacks.items():
        total = sum(stack.values())
        rows.append(
            (name, *[f"{stack[c]:.3f}" for c in COMPONENTS], f"{total:.3f}")
        )
    print()
    print(format_table(
        ["Benchmark", *COMPONENTS, "CPI"],
        rows,
        title="Extension -- weighted CPI stacks on simulation points",
    ))
    # Memory-bound benchmarks are dominated by memory stalls; branchy
    # compute benchmarks by base + branch cycles.
    memory_bound = stacks["505.mcf_r"]
    compute_bound = stacks["648.exchange2_s"]
    assert memory_bound["memory"] > compute_bound["memory"]
    assert memory_bound["memory"] > memory_bound["branch"]
    assert compute_bound["branch"] > memory_bound["branch"] * 0.5
    for stack in stacks.values():
        assert all(v >= 0 for v in stack.values())
