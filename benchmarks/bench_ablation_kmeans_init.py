"""Ablation: k-means seeding strategy.

Skew-weighted benchmarks have tiny phases (one or two slices) next to
dominant ones; D^2-sampling (k-means++) and plain random seeding can
leave the tiny phases unseeded, splitting a dominant cluster instead.
Farthest-first (maximin) seeding provably seeds every well-separated
cluster, which is why it is the pipeline default.
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.pin import BBVProfiler, Engine
from repro.simpoint import SimPointAnalysis
from repro.workloads.spec2017 import build_program, get_descriptor

BENCHMARKS = ["503.bwaves_r", "507.cactuBSSN_r", "519.lbm_r", "602.gcc_s",
              "541.leela_r"]
INITS = ("maximin", "k-means++", "random")


def sweep():
    matrices = {}
    for name in BENCHMARKS:
        program = build_program(name)
        profiler = BBVProfiler(program.block_sizes)
        Engine([profiler]).run(program.iter_slices())
        matrices[name] = (profiler.matrix(), profiler.slice_indices())

    errors = {}
    for init in INITS:
        per_benchmark = []
        for name in BENCHMARKS:
            descriptor = get_descriptor(name)
            matrix, indices = matrices[name]
            analysis = SimPointAnalysis(
                seed=descriptor.seed, kmeans_init=init
            )
            result = analysis.analyze(matrix, indices)
            per_benchmark.append(abs(result.k - descriptor.num_phases))
        errors[init] = per_benchmark
    return errors


def test_ablation_kmeans_init(benchmark):
    errors = run_once(benchmark, sweep)
    rows = [
        (init, *errs, f"{sum(errs) / len(errs):.2f}")
        for init, errs in errors.items()
    ]
    print()
    print(format_table(
        ["init", *[b.split(".")[1] for b in BENCHMARKS], "mean |k err|"],
        rows,
        title="Ablation -- k-means seeding vs phase-count error",
    ))
    mean = {init: sum(e) / len(e) for init, e in errors.items()}
    assert mean["maximin"] == 0.0
    assert mean["maximin"] <= mean["k-means++"]
    assert mean["maximin"] <= mean["random"]
