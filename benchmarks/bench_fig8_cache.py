"""Regenerates Figure 8: cache miss rates across the four run types."""

from conftest import run_once

from repro.experiments import render_fig8, run_fig8


def test_fig8(benchmark):
    result = run_once(benchmark, run_fig8)
    print()
    print(render_fig8(result))
    s = result.summary()
    # Shape claims (paper: +0.18 / +0.10 / +25.16 pp for Regional;
    # warmup takes L3 from 25.16 to 9.08 pp).  The scaled substrate
    # amplifies absolute L2/L3 cold deltas; the ordering and the warmup
    # recovery are the reproduced structure.
    assert abs(s["regional"]["L1D"]) < 1.0          # L1D error negligible
    assert s["regional"]["L3"] > 10.0               # L3 cold error large
    assert s["regional"]["L3"] > abs(s["regional"]["L2"])
    assert s["regional"]["L3"] > abs(s["regional"]["L1D"])
    # Reduced behaves like Regional (paper: "very close").
    assert abs(s["reduced"]["L3"] - s["regional"]["L3"]) < 15.0
    # Warmup recovers most of the L3 error (paper: ~64 % reduction).
    assert s["warmup"]["L3"] < s["regional"]["L3"] / 2
    assert abs(s["warmup"]["L2"]) < abs(s["regional"]["L2"])
