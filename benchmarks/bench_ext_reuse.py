"""Extension: statistical warm-miss estimation from reuse distances.

CoolSim/StatCache (the paper's related work [34][35]) replace cache
warming with statistical models of the workload's memory-reuse
information.  This bench profiles exact stack distances, predicts warm
LLC miss rates for cold regions, and checks the prediction against a
genuinely warmed fully-associative simulation.
"""

import numpy as np

from conftest import run_once

from repro.cache.cache import CacheLevel
from repro.cache.reuse import ReuseProfile, estimate_warm_miss_rate
from repro.config import CacheConfig
from repro.experiments.common import pinpoints_for
from repro.experiments.report import format_table

BENCHMARKS = ["505.mcf_r", "541.leela_r"]
CACHE_LINES = 8192  # fully-associative LLC model (capacity pressure visible)


def sweep():
    rows = []
    for name in BENCHMARKS:
        out = pinpoints_for(name)
        program = out.program
        # Profile the whole run once (on a prefix to bound cost) and the
        # three heaviest simulation points.
        whole_profile = ReuseProfile.from_slices(
            program.iter_slices(0, min(200, program.num_slices))
        )
        for point in out.simpoints.sorted_by_weight()[:3]:
            start = point.slice_index
            region_lines = np.concatenate([
                t.mem_lines for t in program.iter_slices(start, 1)
            ])
            region_profile = ReuseProfile.from_lines(region_lines)
            cold = region_profile.miss_rate(CACHE_LINES)
            estimate = estimate_warm_miss_rate(
                region_profile, whole_profile, CACHE_LINES
            )
            # Ground truth: warm a fully-associative cache with the
            # preceding execution, then measure the region.
            cache = CacheLevel(
                CacheConfig("FA", size_bytes=CACHE_LINES * 32, line_size=32,
                            associativity=CACHE_LINES),
                recording=False,
            )
            warm_start = max(0, start - 60)
            for trace in program.iter_slices(warm_start, start - warm_start):
                cache.access_many(trace.mem_lines)
            cache.recording = True
            cache.access_many(region_lines)
            truth = cache.stats.miss_rate
            rows.append((name, start, cold, estimate, truth))
    return rows


def test_ext_reuse_statcache(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["Benchmark", "slice", "cold miss", "StatCache estimate",
         "true warm miss"],
        [
            (n, s, f"{c * 100:.1f}%", f"{e * 100:.1f}%", f"{t * 100:.1f}%")
            for n, s, c, e, t in rows
        ],
        title="Extension -- statistical warm-miss estimation (reuse "
              "distances) vs simulated warming",
    ))
    for name, start, cold, estimate, truth in rows:
        # The estimate must move from the cold rate toward the truth...
        assert abs(estimate - truth) < abs(cold - truth) + 0.02, (name, start)
        # ...and land reasonably close in absolute terms.
        assert abs(estimate - truth) < 0.25, (name, start)
    mean_gain = np.mean([
        abs(c - t) - abs(e - t) for _, _, c, e, t in rows
    ])
    assert mean_gain > 0.0
