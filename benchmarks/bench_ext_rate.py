"""Extension: SPECrate throughput scaling (shared-LLC contention)."""

from conftest import run_once

from repro.experiments import render_rate_scaling, run_rate_scaling


def test_ext_rate_scaling(benchmark):
    result = run_once(benchmark, run_rate_scaling)
    print()
    print(render_rate_scaling(result))
    by_name = {r.benchmark: r for r in result.rows}
    mcf = by_name["505.mcf_r"]
    leela = by_name["541.leela_r"]
    for row in result.rows:
        # Throughput grows with copies but below linear.
        assert row.throughput(8) > row.throughput(2)
        assert row.efficiency(8) < 1.01
        # Per-copy CPI degrades as copies are added (tolerance: copies
        # carry different address jitter, so tiny per-copy set-mapping
        # differences can wiggle the average by a fraction of a percent).
        cpis = [row.results[n].average_cpi for n in result.copy_counts]
        assert all(b >= a - 0.005 for a, b in zip(cpis, cpis[1:]))
        assert cpis[-1] > cpis[0]
    # The memory-bound benchmark suffers more contention than the
    # compute-bound one.
    assert mcf.efficiency(8) < leela.efficiency(8)
