"""Regenerates Figure 9: error vs execution time across percentiles."""

from conftest import run_once

from repro.experiments import render_fig9, run_fig9


def test_fig9(benchmark):
    result = run_once(benchmark, run_fig9)
    print()
    print(render_fig9(result))
    by_pct = result.by_percentile()
    # Execution time grows monotonically with the retained percentile.
    times = [by_pct[p].execution_hours for p in sorted(by_pct)]
    assert times == sorted(times)
    # Dropping points costs accuracy: the 50th-percentile L3 error
    # exceeds the full Regional run's.
    assert by_pct[0.5].miss_rate_error_pp["L3"] >= \
        by_pct[1.0].miss_rate_error_pp["L3"] - 1.0
    assert by_pct[0.5].mix_error_pp >= by_pct[1.0].mix_error_pp - 0.05
    # Retained point counts shrink toward lower percentiles (paper: the
    # 90th percentile drops ~20 points to ~12 on average).
    assert by_pct[0.9].points_retained < by_pct[1.0].points_retained
    assert 10.0 < by_pct[0.9].points_retained < 13.0
    assert abs(by_pct[1.0].points_retained - 19.75) < 0.3
