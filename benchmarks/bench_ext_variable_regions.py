"""Extension: variable-length simulation regions vs single-slice points."""

from conftest import run_once

from repro.experiments.common import (
    measure_points,
    measure_whole,
    pinpoints_for,
)
from repro.experiments.report import format_table
from repro.pinball.pinball import RegionalPinball
from repro.simpoint.variable import region_statistics, variable_length_regions
from repro.stats.compare import max_abs_percentage_points

BENCHMARKS = ["505.mcf_r", "541.leela_r", "623.xalancbmk_s"]


def sweep():
    rows = []
    for name in BENCHMARKS:
        out = pinpoints_for(name)
        whole = measure_whole(out)
        fixed = measure_points(out, out.regional)

        regions = variable_length_regions(
            out.simpoints, max_region_slices=18
        )
        pinballs = [
            RegionalPinball(
                recipe=out.whole.recipe,
                region_start=r.start,
                region_length=r.length,
                weight=r.weight,
                warmup_slices=0,
            )
            for r in regions
        ]
        variable = measure_points(out, pinballs)
        stats = region_statistics(regions)
        rows.append(
            (
                name,
                stats["mean_length"],
                max_abs_percentage_points(fixed.mix, whole.mix),
                max_abs_percentage_points(variable.mix, whole.mix),
                (fixed.miss_rates["L3"] - whole.miss_rates["L3"]) * 100,
                (variable.miss_rates["L3"] - whole.miss_rates["L3"]) * 100,
            )
        )
    return rows


def test_ext_variable_regions(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["Benchmark", "mean region (slices)", "fixed mix err",
         "variable mix err", "fixed L3 err(pp)", "variable L3 err(pp)"],
        [
            (n, f"{ml:.1f}", f"{fm:.3f}", f"{vm:.3f}", f"{fl:+.2f}",
             f"{vl:+.2f}")
            for n, ml, fm, vm, fl, vl in rows
        ],
        title="Extension -- variable-length regions amortize cold start",
    ))
    for name, mean_len, fixed_mix, var_mix, fixed_l3, var_l3 in rows:
        # Longer regions amortize cold-start misses over more accesses.
        assert mean_len > 3.0, name
        assert var_l3 < fixed_l3, name
        # Mix accuracy stays in the same (sub-pp) class.
        assert var_mix < 1.0, name
