"""Extension: accuracy/cost frontier smoke across the sampler registry.

A deliberately small sweep — two contrasting workloads at the quick
pipeline scale — so the whole frontier (every default sampler at every
default budget) finishes well under a minute and can gate CI.  The full
suite-wide frontier is ``repro-spec2017 sampler-frontier``.
"""

from conftest import run_once

from repro.experiments import render_frontier, run_frontier

# One skewed-phase and one flat-phase workload: enough to exercise every
# sampler's allocation logic without a suite-scale runtime.
BENCHMARKS = ["620.omnetpp_s", "557.xz_r"]
SMOKE = dict(slice_size=10_000, total_slices=240)


def test_ext_sampler_frontier(benchmark):
    result = run_once(
        benchmark,
        lambda: run_frontier(BENCHMARKS, budgets=(2, 4, 8, 16), **SMOKE),
    )
    print()
    print(render_frontier(result))
    samplers = result.samplers()
    # The acceptance bar: at least four distinct sampler curves,
    # including the paper's methodology and the newly ported methods.
    assert len(samplers) >= 4
    assert {"simpoint", "stratified2", "ranked", "mav"} <= set(samplers)
    budgets = result.budgets()
    assert budgets == [2, 4, 8, 16]
    # Every curve must be complete (no silently dropped cells) ...
    assert len(result.rows) == len(samplers) * len(budgets) * len(BENCHMARKS)
    # ... and sane: errors finite, budgets actually consumed.
    for row in result.rows:
        assert row.cpi_error_pct >= 0.0
        assert 0 < row.points <= row.budget
        assert row.instructions > 0
    # Clustering at a generous budget should beat blind random sampling
    # at the top of the frontier on these phase-structured workloads.
    top = budgets[-1]
    assert result.mean_error_pct("simpoint", top) <= \
        result.mean_error_pct("random", top) + 5.0
