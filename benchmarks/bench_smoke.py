"""Fast cache-backend smoke check for CI (`bench-smoke` job).

A full cold sweep (``bench_perf_pipeline.py``) takes minutes; this file
is the sub-minute gate that runs on every pull request.  It replays a
few dozen slices of one calibrated benchmark through every available
cache backend and asserts the invariant the fused engine is built on:
**backends differ only in speed, never in results** — identical
per-level access, miss, and writeback counts.

A generous absolute wall budget guards against order-of-magnitude
regressions (an accidentally quadratic kernel, a backend silently
falling back to per-access simulation).  The budget gates only when
``REPRO_BENCH_ENFORCE`` is set (the CI job sets it), so loaded laptops
can still run the file informatively.
"""

from __future__ import annotations

import json
import os

from repro.cache.fused import BACKENDS, resolve_backend
from repro.pin.engine import Engine
from repro.pin.tools.allcache import AllCache
from repro.telemetry.clock import monotonic_ns
from repro.workloads.spec2017 import build_program

#: Slices replayed per backend (with a warmup prefix, like a region).
_NUM_SLICES = 24
_WARMUP_SLICES = 6

#: Absolute wall budget for one backend's replay, in seconds.  The
#: slowest backend (numpy, per-batch) does this in well under a second
#: on 2020s hardware; 20s catches only catastrophic regressions.
_WALL_BUDGET_S = 20.0

_ENFORCE_ENV = "REPRO_BENCH_ENFORCE"


def _enforcing() -> bool:
    return os.environ.get(_ENFORCE_ENV, "").lower() not in ("", "0", "false")


def _available_backends() -> list:
    """Every backend that resolves to itself on this machine."""
    return [b for b in BACKENDS if resolve_backend(b) == b]


def _replay(backend: str) -> dict:
    program = build_program("505.mcf_r")
    tool = AllCache(backend=backend)
    engine = Engine([tool])
    start = monotonic_ns()
    engine.run(
        program.iter_slices(_WARMUP_SLICES, _NUM_SLICES - _WARMUP_SLICES),
        warmup=program.iter_slices(0, _WARMUP_SLICES),
    )
    wall_s = (monotonic_ns() - start) / 1e9
    stats = {
        name: (s.accesses, s.misses, s.writebacks)
        for name, s in tool.stats().items()
    }
    return {"backend": backend, "wall_s": round(wall_s, 3), "stats": stats}


def test_backends_agree_and_fit_budget():
    backends = _available_backends()
    assert "numpy" in backends and "fused" in backends
    runs = [_replay(backend) for backend in backends]

    reference = runs[0]["stats"]
    for run in runs[1:]:
        assert run["stats"] == reference, (
            f"backend {run['backend']!r} diverged from "
            f"{runs[0]['backend']!r}: {run['stats']} != {reference}"
        )
    # The replay actually exercised the hierarchy end to end.
    assert reference["L1D"][0] > 0
    assert reference["L3"][0] > 0

    report = {
        "bench": "cache-backend smoke",
        "slices": _NUM_SLICES,
        "warmup_slices": _WARMUP_SLICES,
        "default_backend": resolve_backend(),
        "runs": [
            {k: v for k, v in run.items() if k != "stats"} for run in runs
        ],
        "wall_budget_s": _WALL_BUDGET_S,
        "enforced": _enforcing(),
    }
    print()
    print(json.dumps(report, indent=2))

    if _enforcing():
        for run in runs:
            assert run["wall_s"] <= _WALL_BUDGET_S, (
                f"backend {run['backend']!r} took {run['wall_s']}s, "
                f"budget {_WALL_BUDGET_S}s"
            )
