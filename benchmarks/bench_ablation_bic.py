"""Ablation: BIC complexity-penalty weight.

The spherical-Gaussian BIC overfits k on program BBVs when its
complexity penalty is weakened — splitting any large cluster buys more
likelihood than the penalty costs — which is why the pipeline ships with
a calibrated weight of 2.  This sweep quantifies the effect on Table II
accuracy (with maximin seeding; see the k-means init ablation for the
interaction with seeding quality).
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.pin import BBVProfiler, Engine
from repro.simpoint import SimPointAnalysis
from repro.workloads.spec2017 import build_program, get_descriptor

BENCHMARKS = ["505.mcf_r", "541.leela_r", "623.xalancbmk_s", "503.bwaves_r",
              "507.cactuBSSN_r", "631.deepsjeng_s"]
WEIGHTS = (0.1, 0.25, 1.0, 2.0)


def sweep():
    matrices = {}
    for name in BENCHMARKS:
        program = build_program(name)
        profiler = BBVProfiler(program.block_sizes)
        Engine([profiler]).run(program.iter_slices())
        matrices[name] = (profiler.matrix(), profiler.slice_indices())

    rows = {}
    for weight in WEIGHTS:
        errors = []
        for name in BENCHMARKS:
            descriptor = get_descriptor(name)
            matrix, indices = matrices[name]
            analysis = SimPointAnalysis(
                seed=descriptor.seed, bic_penalty_weight=weight
            )
            result = analysis.analyze(matrix, indices)
            errors.append(abs(result.k - descriptor.num_phases))
        rows[weight] = errors
    return rows


def test_ablation_bic_penalty(benchmark):
    rows = run_once(benchmark, sweep)
    table = [
        (f"{w:g}", *errs, f"{sum(errs) / len(errs):.2f}")
        for w, errs in rows.items()
    ]
    print()
    print(format_table(
        ["penalty", *[b.split(".")[1] for b in BENCHMARKS], "mean |k err|"],
        table,
        title="Ablation -- BIC penalty weight vs phase-count error",
    ))
    mean_error = {w: sum(e) / len(e) for w, e in rows.items()}
    # Weak penalties overfit k (large clusters get split); the calibrated
    # weight recovers the published counts exactly.
    assert mean_error[0.1] > 0.0
    assert mean_error[2.0] <= mean_error[1.0]
    assert mean_error[2.0] == 0.0
