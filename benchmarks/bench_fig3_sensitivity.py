"""Regenerates Figure 3: MaxK and slice-size sensitivity (xalancbmk_s)."""

from conftest import run_once

from repro.experiments import render_fig3, run_fig3_maxk, run_fig3_slice_size


def test_fig3a_maxk(benchmark):
    result = run_once(benchmark, run_fig3_maxk)
    print()
    print(render_fig3(result))
    by_k = {p.setting: p for p in result.points}
    # Small MaxK starves the clustering (xalancbmk_s has 25 phases) and
    # hurts the instruction-mix accuracy; MaxK=35 captures every phase.
    assert by_k[15.0].chosen_k <= 15
    assert by_k[35.0].chosen_k == 25
    assert by_k[15.0].mix_error_pp > by_k[35.0].mix_error_pp
    assert by_k[35.0].mix_error_pp < 1.0


def test_fig3b_slice_size(benchmark):
    result = run_once(benchmark, run_fig3_slice_size)
    print()
    print(render_fig3(result))
    by_size = {p.setting: p for p in result.points}
    # Small slices suffer amplified cold-cache L3 error; growing the slice
    # shrinks it dramatically (the paper's justification for >= 30 M).
    assert by_size[15.0].miss_rate_error_pp["L3"] > \
        by_size[100.0].miss_rate_error_pp["L3"]
    # The instruction mix stays accurate at every slice size.
    assert all(p.mix_error_pp < 1.5 for p in result.points)
