"""Extension: suite subsetting via PCA + hierarchical clustering."""

from conftest import run_once

from repro.analysis import select_subset
from repro.experiments.report import format_table
from repro.workloads.spec2017 import benchmark_names, get_descriptor

#: A cross-section of the suite covering all memory classes and variants.
BENCHMARKS = [
    "505.mcf_r", "520.omnetpp_r", "541.leela_r", "648.exchange2_s",
    "557.xz_r", "623.xalancbmk_s", "503.bwaves_r", "519.lbm_r",
    "511.povray_r", "538.imagick_r",
]
SUBSET_SIZE = 4


def test_ext_subsetting(benchmark):
    result = run_once(
        benchmark, lambda: select_subset(BENCHMARKS, SUBSET_SIZE)
    )
    rows = []
    for cluster, members in sorted(result.cluster_members().items()):
        representative = result.representatives[cluster]
        rows.append(
            (cluster, representative,
             ", ".join(m.split(".")[1] for m in members))
        )
    print()
    print(format_table(
        ["cluster", "representative", "members"],
        rows,
        title=f"Extension -- {SUBSET_SIZE}-benchmark subset of "
              f"{len(BENCHMARKS)} (PCA + hierarchical clustering)",
    ))
    print(f"PCA explained variance: "
          + ", ".join(f"{r * 100:.0f}%" for r in result.explained_variance))

    assert len(set(result.representatives)) == SUBSET_SIZE
    # The subset must span behaviours: at least two memory classes among
    # the representatives.
    classes = {get_descriptor(r).memory_class for r in result.representatives}
    assert len(classes) >= 2
    # Clustering must not lump memory-bound and compute-bound extremes.
    labels = dict(zip(result.benchmarks, result.labels))
    assert labels["505.mcf_r"] != labels["648.exchange2_s"]
