"""Regenerates Table II: simulation points for all 29 benchmarks."""

from conftest import run_once

from repro.experiments import render_table2, run_table2


def test_table2(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(render_table2(result))
    # Exact reproduction of the published table.
    assert result.mismatches == []
    assert abs(result.average_points - 19.75) < 0.011
    assert abs(result.average_points_90 - 11.31) < 0.005
