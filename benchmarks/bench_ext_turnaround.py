"""Extension: simulation-campaign turnaround across strategies."""

from conftest import run_once

from repro.experiments import render_turnaround, run_turnaround

BENCHMARKS = ["505.mcf_r", "503.bwaves_r", "623.xalancbmk_s",
              "631.deepsjeng_s"]


def test_ext_turnaround(benchmark):
    result = run_once(benchmark, lambda: run_turnaround(BENCHMARKS))
    print()
    print(render_turnaround(result))
    full = result.average_hours("detailed-full")
    serial = result.average_hours("serial-replay")
    parallel = result.average_hours("parallel-replay")
    fsa = result.average_hours("fsa")
    # The paper's motivation: detailed full simulation is months; sampled
    # replay is hours.
    assert full > 24 * 30                 # > a month
    assert serial < 24                    # < a day
    assert parallel < serial
    # FSA avoids checkpoint replay but must traverse the whole program;
    # on multi-trillion-instruction workloads that one pass dominates.
    assert fsa > serial
