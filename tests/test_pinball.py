"""Pinball checkpoints: creation, serialization, deterministic replay."""

import numpy as np
import pytest

from repro.errors import PinballError
from repro.pin import InsCount, LdStMix
from repro.pinball import PinPlayLogger, Pinball, RegionalPinball, Replayer, WholePinball
from repro.pinball.pinball import ProgramRecipe
from repro.simpoint.simpoints import SimulationPoint

from conftest import QUICK


@pytest.fixture(scope="module")
def logger(request):
    from repro.workloads.spec2017 import build_program

    program = build_program("620.omnetpp_s", **QUICK)
    return PinPlayLogger("620.omnetpp_s", program)


class TestLogger:
    def test_whole_pinball_spans_execution(self, logger):
        whole = logger.log_whole()
        assert whole.num_slices == QUICK["total_slices"]
        assert whole.region_start == 0
        assert whole.kind == "whole"

    def test_regional_pinballs(self, logger):
        points = [
            SimulationPoint(slice_index=10, cluster=0, weight=0.6,
                            cluster_size=70),
            SimulationPoint(slice_index=90, cluster=1, weight=0.4,
                            cluster_size=50),
        ]
        pinballs = logger.log_regions(points, warmup_slices=5)
        assert len(pinballs) == 2
        assert pinballs[0].region_start == 10
        assert pinballs[0].weight == 0.6
        assert pinballs[0].warmup_slices == 5
        assert pinballs[0].kind == "regional"

    def test_default_warmup_is_paper_500m(self, logger):
        points = [SimulationPoint(50, 0, 1.0, 120)]
        pinball = logger.log_regions(points)[0]
        # 500 M / 30 M paper instructions ~= 17 slices.
        assert pinball.warmup_slices == 17

    def test_rejects_empty_points(self, logger):
        with pytest.raises(PinballError):
            logger.log_regions([])


class TestRegionalPinball:
    def _recipe(self):
        return ProgramRecipe("620.omnetpp_s", QUICK["slice_size"],
                             QUICK["total_slices"])

    def test_warmup_truncated_at_program_start(self):
        pinball = RegionalPinball(
            recipe=self._recipe(), region_start=3, region_length=1,
            weight=0.5, warmup_slices=17,
        )
        assert pinball.warmup_start == 0
        assert pinball.effective_warmup == 3
        assert pinball.total_slices_with_warmup == 4

    def test_rejects_bad_weight(self):
        with pytest.raises(PinballError):
            RegionalPinball(recipe=self._recipe(), region_start=0,
                            region_length=1, weight=0.0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(PinballError):
            RegionalPinball(recipe=self._recipe(), region_start=0,
                            region_length=1, weight=0.5, warmup_slices=-1)

    def test_rejects_region_past_end(self):
        with pytest.raises(PinballError):
            RegionalPinball(recipe=self._recipe(),
                            region_start=QUICK["total_slices"],
                            region_length=1, weight=0.5)

    def test_rejects_empty_region(self):
        with pytest.raises(PinballError):
            RegionalPinball(recipe=self._recipe(), region_start=0,
                            region_length=0, weight=0.5)


class TestSerialization:
    def test_roundtrip_regional(self, logger, tmp_path):
        points = [SimulationPoint(10, 0, 0.75, 90)]
        pinball = logger.log_regions(points, warmup_slices=4)[0]
        path = tmp_path / "region.pinball.json"
        pinball.save(path)
        loaded = Pinball.load(path)
        assert isinstance(loaded, RegionalPinball)
        assert loaded.region_start == 10
        assert loaded.weight == 0.75
        assert loaded.warmup_slices == 4
        assert loaded.recipe == pinball.recipe

    def test_roundtrip_whole(self, logger, tmp_path):
        whole = logger.log_whole()
        path = tmp_path / "whole.pinball.json"
        whole.save(path)
        loaded = Pinball.load(path)
        assert isinstance(loaded, WholePinball)
        assert loaded.num_slices == whole.num_slices

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(PinballError):
            Pinball.load(path)

    def test_load_rejects_wrong_version(self):
        with pytest.raises(PinballError):
            Pinball.from_dict({"format_version": 999})

    def test_load_rejects_unknown_kind(self, logger):
        data = logger.log_whole().to_dict()
        data["kind"] = "mystery"
        with pytest.raises(PinballError):
            Pinball.from_dict(data)


class TestReplayer:
    def test_replay_matches_original_slices(self, logger):
        pinball = RegionalPinball(
            recipe=logger.recipe, region_start=7, region_length=2, weight=1.0
        )
        original = [logger.program.generate_slice(7),
                    logger.program.generate_slice(8)]
        replayed = list(pinball.replay_slices())
        for a, b in zip(original, replayed):
            assert np.array_equal(a.mem_lines, b.mem_lines)
            assert a.instruction_count == b.instruction_count

    def test_replay_through_tools(self, logger):
        whole = logger.log_whole()
        tools = Replayer(logger.program).replay(whole, [InsCount(), LdStMix()])
        assert tools[0].slices == QUICK["total_slices"]
        assert tools[1].total_instructions == tools[0].instructions

    def test_warmup_flag_ignored_for_whole(self, logger):
        whole = logger.log_whole()
        tools = Replayer(logger.program).replay(
            whole, [InsCount()], with_warmup=True
        )
        assert tools[0].slices == QUICK["total_slices"]

    def test_shared_program_mismatch_rejected(self, logger):
        from repro.workloads.spec2017 import build_program

        other = build_program("620.omnetpp_s", slice_size=3000,
                              total_slices=80)
        replayer = Replayer(other)
        with pytest.raises(PinballError):
            replayer.replay(logger.log_whole(), [InsCount()])

    def test_materializes_when_no_program_shared(self, logger):
        pinball = RegionalPinball(
            recipe=logger.recipe, region_start=2, region_length=1, weight=1.0
        )
        tools = Replayer().replay(pinball, [InsCount()])
        assert tools[0].slices == 1
