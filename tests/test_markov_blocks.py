"""The optional Markov block-execution model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.pin import BBVProfiler, Engine
from repro.simpoint import SimPointAnalysis
from repro.workloads.program import SyntheticProgram
from repro.workloads.schedule import PhaseSchedule

from conftest import make_phase


def program(block_model="markov", self_loop=0.45, slices=40, seed=21):
    phases = [
        make_phase(0, weight=0.5, mix=(0.6, 0.3, 0.08, 0.02)),
        make_phase(1, weight=0.5, mix=(0.4, 0.4, 0.17, 0.03)),
    ]
    schedule = PhaseSchedule.from_counts([slices // 2, slices // 2], seed=3)
    return SyntheticProgram(
        "markov.test", phases, schedule, slice_size=4000, seed=seed,
        block_model=block_model, markov_self_loop=self_loop,
    )


class TestMarkovModel:
    def test_deterministic(self):
        a = program().generate_slice(5)
        b = program().generate_slice(5)
        assert np.array_equal(a.block_counts, b.block_counts)
        assert np.array_equal(a.mem_lines, b.mem_lines)

    def test_counts_sum_to_entries(self):
        multinomial = program(block_model="multinomial").generate_slice(0)
        markov = program(block_model="markov").generate_slice(0)
        # Same number of block entries either way (same target size).
        assert abs(
            markov.block_counts.sum() - multinomial.block_counts.sum()
        ) <= multinomial.block_counts.sum() * 0.2

    def test_stationary_matches_frequencies(self):
        """Long-run block shares equal the phase frequencies."""
        prog = program(slices=40)
        totals = np.zeros(prog.num_blocks)
        for trace in prog.iter_slices():
            if trace.phase_id == 0:
                totals += trace.block_counts
        shares = totals / totals.sum()
        runtime = prog._runtime[0]
        expected = np.zeros(prog.num_blocks)
        expected[runtime.entry_ids] = runtime.entry_freqs
        assert np.abs(shares - expected).max() < 0.02

    def test_burstier_than_multinomial(self):
        """Self-loops raise the per-slice count variance."""
        def per_slice_share_std(prog):
            shares = []
            for trace in prog.iter_slices():
                if trace.phase_id == 0:
                    vec = trace.block_counts.astype(float)
                    shares.append(vec / vec.sum())
            return float(np.vstack(shares).std(axis=0).mean())

        markov = per_slice_share_std(program(block_model="markov",
                                             self_loop=0.7))
        multinomial = per_slice_share_std(program(block_model="multinomial"))
        assert markov > multinomial

    def test_clustering_still_separates_phases(self):
        prog = program(slices=60)
        profiler = BBVProfiler(prog.block_sizes)
        Engine([profiler]).run(prog.iter_slices())
        result = SimPointAnalysis(max_k=8, seed=1).analyze(
            profiler.matrix(), profiler.slice_indices()
        )
        assert result.k == 2
        for point in result.points:
            members = np.flatnonzero(result.labels == point.cluster)
            phases = {prog.phase_of_slice(int(i)) for i in members}
            assert len(phases) == 1

    def test_zero_self_loop_equivalent_variance_class(self):
        # With no self-loops the walk is i.i.d. — same model family.
        prog = program(block_model="markov", self_loop=0.0)
        trace = prog.generate_slice(0)
        assert trace.block_counts.sum() > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            program(block_model="bogus")
        with pytest.raises(WorkloadError):
            program(self_loop=1.0)
