"""Sniper interval timing model."""

import numpy as np
import pytest

from repro.config import SNIPER_SIM, SNIPER_TABLE_III
from repro.errors import SimulationError
from repro.sniper import SniperSimulator, TimingParams
from repro.workloads.phases import PhaseSpec
from repro.workloads.program import SyntheticProgram
from repro.workloads.schedule import PhaseSchedule

from conftest import make_phase


def program_with(mem_fractions, entropy=0.2, slices=12, seed=11):
    phases = [make_phase(0, weight=1.0, mem_fractions=mem_fractions,
                         branch_entropy=entropy)]
    schedule = PhaseSchedule.from_counts([slices], seed=1)
    return SyntheticProgram("t", phases, schedule, 3000, seed=seed)


COMPUTE = (0.97, 0.015, 0.006, 0.004, 0.005)
MEMORY = (0.70, 0.13, 0.08, 0.05, 0.04)


class TestSniper:
    def test_cpi_positive_and_sane(self):
        program = program_with(COMPUTE)
        timing = SniperSimulator().run_region(program.iter_slices())
        assert 0.2 < timing.cpi < 10.0
        assert timing.instructions > 0
        assert timing.cycles > 0

    def test_memory_bound_has_higher_cpi(self):
        light = SniperSimulator().run_region(
            program_with(COMPUTE).iter_slices()
        )
        heavy = SniperSimulator().run_region(
            program_with(MEMORY).iter_slices()
        )
        assert heavy.cpi > light.cpi

    def test_branch_entropy_raises_cpi(self):
        calm = SniperSimulator().run_region(
            program_with(COMPUTE, entropy=0.0).iter_slices()
        )
        noisy = SniperSimulator().run_region(
            program_with(COMPUTE, entropy=1.0).iter_slices()
        )
        assert noisy.cpi > calm.cpi
        assert noisy.branch_mispredicts > calm.branch_mispredicts

    def test_warmup_lowers_cpi(self):
        program = program_with(MEMORY, slices=20)
        cold = SniperSimulator().run_region(program.iter_slices(10, 4))
        warm = SniperSimulator().run_region(
            program.iter_slices(10, 4), warmup=program.iter_slices(0, 10)
        )
        assert warm.cycles < cold.cycles
        assert warm.instructions == cold.instructions

    def test_miss_counts_reported(self):
        program = program_with(MEMORY)
        timing = SniperSimulator().run_region(program.iter_slices())
        assert timing.l1d_misses >= timing.l2_misses >= timing.l3_misses
        assert timing.l3_accesses == timing.l2_misses

    def test_default_machine_is_scaled_table3(self):
        assert SniperSimulator().system is SNIPER_SIM

    def test_full_table3_machine_accepted(self):
        program = program_with(COMPUTE, slices=4)
        timing = SniperSimulator(system=SNIPER_TABLE_III).run_region(
            program.iter_slices()
        )
        assert timing.cpi > 0

    def test_custom_params_change_cpi(self):
        program = program_with(COMPUTE)
        base = SniperSimulator().run_region(program.iter_slices())
        slow = SniperSimulator(
            params=TimingParams(dependency_cpi=1.0)
        ).run_region(program.iter_slices())
        assert slow.cpi > base.cpi

    def test_empty_region_rejected(self):
        with pytest.raises(SimulationError):
            SniperSimulator().run_region([])

    def test_cpi_undefined_without_instructions(self):
        from repro.sniper.core import RegionTiming

        timing = RegionTiming(0, 0.0, 0.0, 0, 0, 0, 0)
        with pytest.raises(SimulationError):
            _ = timing.cpi

    def test_deterministic(self):
        program = program_with(MEMORY)
        a = SniperSimulator().run_region(program.iter_slices())
        b = SniperSimulator().run_region(program.iter_slices())
        assert a.cycles == b.cycles
