"""Trace export/import round-trips."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.pin import Engine, LdStMix
from repro.workloads.trace_io import FORMAT, export_traces, import_traces


class TestRoundTrip:
    def test_bit_exact(self, small_program, tmp_path):
        path = export_traces(small_program, tmp_path / "t.npz", 0, 10)
        traces = import_traces(path)
        assert len(traces) == 10
        for loaded in traces:
            original = small_program.generate_slice(loaded.index)
            assert np.array_equal(loaded.mem_lines, original.mem_lines)
            assert np.array_equal(loaded.mem_is_write, original.mem_is_write)
            assert np.array_equal(loaded.block_counts, original.block_counts)
            assert np.array_equal(loaded.class_counts, original.class_counts)
            assert np.array_equal(loaded.ifetch_lines, original.ifetch_lines)
            assert loaded.instruction_count == original.instruction_count
            assert loaded.branch_count == original.branch_count
            assert loaded.branch_entropy == original.branch_entropy
            assert loaded.phase_id == original.phase_id

    def test_default_exports_everything(self, small_program, tmp_path):
        path = export_traces(small_program, tmp_path / "all.npz")
        assert len(import_traces(path)) == small_program.num_slices

    def test_loaded_traces_drive_tools(self, small_program, tmp_path):
        path = export_traces(small_program, tmp_path / "t.npz", 5, 4)
        tool = LdStMix()
        Engine([tool]).run(import_traces(path))
        reference = LdStMix()
        Engine([reference]).run(small_program.iter_slices(5, 4))
        assert np.array_equal(tool.class_counts, reference.class_counts)

    def test_subrange(self, small_program, tmp_path):
        path = export_traces(small_program, tmp_path / "t.npz", 7, 3)
        traces = import_traces(path)
        assert [t.index for t in traces] == [7, 8, 9]

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            import_traces(tmp_path / "missing.npz")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, format=np.asarray("something-else"))
        with pytest.raises(WorkloadError):
            import_traces(path)

    def test_format_constant(self):
        assert FORMAT.startswith("repro-slice-traces")
