"""Whole-program flow engine: CFG, graphs, taint, incrementality, CLI.

Covers the :mod:`repro.lint.flow` layers bottom-up — CFG shape,
project/call-graph construction on synthetic packages, the taint
fixpoint, the incremental summary cache (exact reverse-cone
invalidation, the ``flow.summary.hit`` counter, parse-once), the SARIF
reporter, ``baseline --update`` merging, and ``--changed`` scoping.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, render_sarif
from repro.lint.astcache import AstCache
from repro.lint.baseline import (
    load_baseline,
    merge_baseline,
    save_baseline,
    save_fingerprints,
)
from repro.lint.cli import main as lint_main
from repro.lint.flow import build_cfg, build_project, lint_project
from repro.lint.flow.cfg import EXIT
from repro.lint.flow.dataflow import join_origin_maps, solve_forward
from repro.lint.flow.graph import absolutize, module_name_for
from repro.lint.flow.taint import TaintAnalysis
from repro.lint.registry import Finding, Severity
from repro.lint.walker import iter_python_files
from repro.parallel.store import ArtifactStore
from repro.telemetry.recorder import TraceRecorder, using_recorder

pytestmark = pytest.mark.lint


def _parse_body(source: str):
    return ast.parse(textwrap.dedent(source)).body


# ---------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------


class TestCfg:
    def test_linear_chain(self):
        cfg = build_cfg(_parse_body("a = 1\nb = 2\nc = 3\n"))
        assert len(cfg.nodes) == 3
        assert cfg.succs[cfg.entry] != {EXIT}
        # The last statement falls through to EXIT.
        order = [cfg.entry]
        while cfg.succs[order[-1]] != {EXIT}:
            (nxt,) = cfg.succs[order[-1]]
            order.append(nxt)
        assert len(order) == 3

    def test_if_branches_rejoin(self):
        cfg = build_cfg(
            _parse_body(
                """
                if cond:
                    x = 1
                else:
                    x = 2
                done = True
                """
            )
        )
        branch = cfg.entry
        assert len(cfg.succs[branch]) == 2
        targets = cfg.succs[branch]
        # Both arms flow into the join statement.
        joins = {next(iter(cfg.succs[t])) for t in targets}
        assert len(joins) == 1

    def test_while_has_back_edge_and_exit(self):
        cfg = build_cfg(
            _parse_body(
                """
                while cond:
                    x = 1
                y = 2
                """
            )
        )
        head = cfg.entry
        succs = cfg.succs[head]
        assert len(succs) == 2  # body entry + loop exit
        body = [s for s in succs if isinstance(cfg.nodes[s], ast.Assign)
                and cfg.nodes[s].targets[0].id == "x"][0]
        assert cfg.succs[body] == {head}  # back edge

    def test_return_goes_to_exit(self):
        cfg = build_cfg(_parse_body("return 1\nx = 2\n"))
        assert cfg.succs[cfg.entry] == {EXIT}

    def test_try_body_edges_into_handler(self):
        cfg = build_cfg(
            _parse_body(
                """
                try:
                    risky()
                except ValueError:
                    handled = True
                after = 1
                """
            )
        )
        risky = cfg.entry
        handler_targets = {
            s
            for s in cfg.succs[risky]
            if isinstance(cfg.nodes[s], ast.Assign)
            and cfg.nodes[s].targets[0].id == "handled"
        }
        assert handler_targets  # exceptional edge exists

    def test_break_targets_loop_exit(self):
        cfg = build_cfg(
            _parse_body(
                """
                for item in items:
                    break
                after = 1
                """
            )
        )
        loop = cfg.entry
        brk = [s for s in cfg.succs[loop] if isinstance(cfg.nodes[s], ast.Break)]
        after = [
            s for s in cfg.succs[loop] if isinstance(cfg.nodes[s], ast.Assign)
        ]
        assert brk and after
        assert cfg.succs[brk[0]] == {after[0]}


class TestDataflow:
    def test_join_is_order_insensitive(self):
        a = {"x": "time.time()"}
        b = {"x": "random.random()", "y": "id()"}
        assert join_origin_maps(a, b) == join_origin_maps(b, a)

    def test_solver_reaches_fixpoint_on_loop(self):
        cfg = build_cfg(
            _parse_body(
                """
                while cond:
                    x = x + 1
                done = x
                """
            )
        )

        def transfer(stmt, state):
            out = dict(state)
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.targets[0], ast.Name
            ):
                out[stmt.targets[0].id] = "seen"
            return out

        states = solve_forward(cfg, transfer, join_origin_maps, {})
        assert states  # terminated


# ---------------------------------------------------------------------
# Project / call graph on synthetic packages
# ---------------------------------------------------------------------


def _write_package(root: Path, files: dict) -> Path:
    pkg = root / "pkg"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source), encoding="utf-8")
    return pkg


def _project_for(root: Path, config=None):
    config = config or LintConfig(baseline=None, root=root)
    cache = AstCache(config)
    files = iter_python_files([root], config)
    return build_project(cache, files), cache, files, config


class TestProjectGraph:
    def test_module_names_follow_packages(self, tmp_path):
        pkg = _write_package(tmp_path, {"a.py": "x = 1\n"})
        assert module_name_for(pkg / "a.py") == "pkg.a"
        assert module_name_for(pkg / "__init__.py") == "pkg"

    def test_absolutize_relative_imports(self):
        assert absolutize(".common", "pkg.sub") == "pkg.sub.common"
        assert absolutize("..common", "pkg.sub") == "pkg.common"
        assert absolutize("os.path", "pkg") == "os.path"

    def test_import_graph_and_reverse_cone(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "a.py": "X = 1\n",
                "b.py": "from pkg.a import X\nY = X\n",
                "c.py": "import pkg.b\nZ = pkg.b.Y\n",
                "d.py": "W = 4\n",
            },
        )
        project, _cache, _files, _cfg = _project_for(tmp_path)
        assert "pkg.a" in project.modules["pkg.b"].imports
        assert project.importers_of("pkg.a") == {"pkg.b"}
        cone = project.reverse_cone(["pkg.a"])
        assert cone == {"pkg.a", "pkg.b", "pkg.c"}
        assert project.reverse_cone(["pkg.d"]) == {"pkg.d"}

    def test_call_graph_resolves_across_modules_and_partials(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "a.py": """
                    def helper():
                        return 1
                    """,
                "b.py": """
                    import functools
                    from pkg.a import helper

                    def caller():
                        return helper()

                    def binder():
                        return functools.partial(helper, 1)
                    """,
            },
        )
        project, _cache, _files, _cfg = _project_for(tmp_path)
        b = project.modules["pkg.b"]
        resolved = project.resolve_function(b, "pkg.a.helper")
        assert resolved is not None and resolved[1].qualname == "helper"
        # partial(...) contributes the wrapped function to the call set.
        assert "pkg.a.helper" in b.functions["binder"].calls
        closure = project.reachable_from(b, b.functions["caller"])
        names = {(m.name, f.qualname) for m, f in closure}
        assert ("pkg.a", "helper") in names

    def test_memo_writes_classified(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "a.py": """
                    _CACHE = {}
                    _LOG = []

                    def memoized(key):
                        if key in _CACHE:
                            return _CACHE[key]
                        _CACHE[key] = key * 2
                        return _CACHE[key]

                    def leaky(key):
                        _LOG.append(key)
                        return key
                    """,
            },
        )
        project, _cache, _files, _cfg = _project_for(tmp_path)
        a = project.modules["pkg.a"]
        memo_writes = a.functions["memoized"].global_writes
        assert memo_writes and all(w.memo for w in memo_writes)
        leaky_writes = a.functions["leaky"].global_writes
        assert leaky_writes and not any(w.memo for w in leaky_writes)


class TestTaint:
    def test_returns_taint_propagates_across_modules(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "clocks.py": """
                    import time

                    def now():
                        return time.time()
                    """,
                "uses.py": """
                    from pkg.clocks import now

                    def stamp():
                        value = now()
                        return value
                    """,
            },
        )
        project, _cache, _files, cfg = _project_for(tmp_path)
        analysis = TaintAnalysis(project, cfg)
        project.taint = analysis
        analysis.compute()
        clocks = project.modules["pkg.clocks"]
        uses = project.modules["pkg.uses"]
        assert clocks.functions["now"].returns_taint
        assert uses.functions["stamp"].returns_taint
        assert "time.time()" in uses.functions["stamp"].taint_origin

    def test_containment_module_is_clean(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "clocks.py": """
                    import time

                    def now():
                        return time.time()
                    """,
            },
        )
        cfg = LintConfig(
            baseline=None, root=tmp_path, rep014_allowed=("pkg/clocks.py",)
        )
        project, _cache, _files, _ = _project_for(tmp_path, cfg)
        analysis = TaintAnalysis(project, cfg)
        project.taint = analysis
        analysis.compute()
        assert not project.modules["pkg.clocks"].functions["now"].returns_taint

    def test_assignment_kills_taint(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "a.py": """
                    import time

                    def reassigned():
                        value = time.time()
                        value = 0.0
                        return value
                    """,
            },
        )
        project, _cache, _files, cfg = _project_for(tmp_path)
        analysis = TaintAnalysis(project, cfg)
        project.taint = analysis
        analysis.compute()
        assert not project.modules["pkg.a"].functions["reassigned"].returns_taint


# ---------------------------------------------------------------------
# Incremental summary cache
# ---------------------------------------------------------------------


_CHAIN = {
    "a.py": "X = 1\n",
    "b.py": "from pkg.a import X\nY = X\n",
    "c.py": "import pkg.b\nZ = pkg.b.Y\n",
    "d.py": "W = 4\n",
}


class TestIncremental:
    def _run(self, root, store, config=None):
        config = config or LintConfig(baseline=None, root=root)
        cache = AstCache(config)
        files = iter_python_files([root], config)
        findings, stats = lint_project(
            files, config, cache=cache, store=store
        )
        return findings, stats, cache

    def test_warm_run_reuses_every_summary(self, tmp_path):
        _write_package(tmp_path, _CHAIN)
        store = ArtifactStore(tmp_path / "cache")
        _, cold, _ = self._run(tmp_path, store)
        assert cold.analyzed == 5 and cold.reused == 0  # 4 modules + __init__
        _, warm, cache = self._run(tmp_path, store)
        assert warm.analyzed == 0 and warm.reused == 5
        # Restoring summaries must not parse anything.
        assert cache.parse_count == 0

    def test_touched_file_invalidates_exactly_its_cone(self, tmp_path):
        pkg = _write_package(tmp_path, _CHAIN)
        store = ArtifactStore(tmp_path / "cache")
        self._run(tmp_path, store)
        (pkg / "b.py").write_text(
            "from pkg.a import X\nY = X + 1\n", encoding="utf-8"
        )
        _, stats, cache = self._run(tmp_path, store)
        # b changed; c imports b.  a, d, and the package __init__ stay
        # summary-restored and unparsed.
        assert stats.analyzed == 2 and stats.reused == 3
        assert cache.parse_count == 2

    def test_hit_counter_reported_via_telemetry(self, tmp_path):
        pkg = _write_package(tmp_path, _CHAIN)
        store = ArtifactStore(tmp_path / "cache")
        self._run(tmp_path, store)
        (pkg / "b.py").write_text(
            "from pkg.a import X\nY = X + 2\n", encoding="utf-8"
        )
        recorder = TraceRecorder()
        with using_recorder(recorder):
            self._run(tmp_path, store)
        assert recorder.metrics.counters["flow.summary.hit"] == 3
        assert recorder.metrics.counters["flow.summary.miss"] == 2

    def test_cached_findings_survive_reuse(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            {
                "worker.py": """
                    _SEEN = []

                    def record(name):
                        _SEEN.append(name)
                        return name
                    """,
                "driver.py": """
                    from repro.parallel import parallel_map
                    from pkg.worker import record

                    def run(names):
                        return parallel_map(record, names)
                    """,
                "other.py": "K = 1\n",
            },
        )
        store = ArtifactStore(tmp_path / "cache")
        cold, cold_stats, _ = self._run(tmp_path, store)
        assert [f.rule for f in cold] == ["REP015"]
        # Touch an unrelated module: the REP015 finding must come back
        # from the summary cache without re-analyzing the driver.
        (pkg / "other.py").write_text("K = 2\n", encoding="utf-8")
        warm, warm_stats, _ = self._run(tmp_path, store)
        assert [f.rule for f in warm] == ["REP015"]
        assert warm_stats.analyzed == 1
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_worker_edit_dirties_the_dispatch_site(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            {
                "worker.py": """
                    def record(name):
                        return name
                    """,
                "driver.py": """
                    from repro.parallel import parallel_map
                    from pkg.worker import record

                    def run(names):
                        return parallel_map(record, names)
                    """,
            },
        )
        store = ArtifactStore(tmp_path / "cache")
        clean, _, _ = self._run(tmp_path, store)
        assert clean == []
        # Introduce the hazard in the *callee*; the finding appears at
        # the dispatch site because the driver is in worker.py's cone.
        (pkg / "worker.py").write_text(
            textwrap.dedent(
                """
                _SEEN = []

                def record(name):
                    _SEEN.append(name)
                    return name
                """
            ),
            encoding="utf-8",
        )
        warm, stats, _ = self._run(tmp_path, store)
        assert [f.rule for f in warm] == ["REP015"]
        assert warm[0].path.endswith("driver.py")
        assert stats.analyzed == 2  # worker + driver; __init__ reused

    def test_no_store_analyzes_everything(self, tmp_path):
        _write_package(tmp_path, _CHAIN)
        _, stats, _ = self._run(tmp_path, store=None)
        assert stats.analyzed == 5 and stats.reused == 0


class TestParseOnce:
    def test_shared_cache_parses_each_file_once(self, tmp_path):
        _write_package(tmp_path, _CHAIN)
        config = LintConfig(baseline=None, root=tmp_path)
        cache = AstCache(config)
        files = iter_python_files([tmp_path], config)
        # Per-file pass AND flow pass through one cache.
        lint_paths([tmp_path], config, cache=cache)
        assert cache.parse_count == len(files)

    def test_content_hash_does_not_parse(self, tmp_path):
        _write_package(tmp_path, {"a.py": "x = 1\n"})
        config = LintConfig(baseline=None, root=tmp_path)
        cache = AstCache(config)
        digest = cache.content_hash(tmp_path / "pkg" / "a.py")
        assert len(digest) == 64
        assert cache.parse_count == 0


# ---------------------------------------------------------------------
# SARIF reporter
# ---------------------------------------------------------------------


class TestSarif:
    def _finding(self, **kw):
        base = dict(
            rule="REP015",
            path="src/repro/x.py",
            line=12,
            col=4,
            message="worker mutates module state",
            severity=Severity.ERROR,
            snippet="parallel_map(record, names)",
        )
        base.update(kw)
        return Finding(**base)

    def test_shape_and_levels(self):
        log = json.loads(
            render_sarif(
                [
                    self._finding(),
                    self._finding(
                        rule="REP016", severity=Severity.WARNING, col=0
                    ),
                ],
                baselined=1,
                files=3,
            )
        )
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["REP015", "REP016"]
        first, second = run["results"]
        assert first["level"] == "error"
        assert second["level"] == "warning"
        loc = first["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/x.py"
        assert loc["region"]["startLine"] == 12
        assert loc["region"]["startColumn"] == 5  # 1-based
        assert first["partialFingerprints"]["reproLintFingerprint/v1"]
        assert run["properties"] == {"files": 3, "baselined": 1}

    def test_empty_run_is_valid(self):
        log = json.loads(render_sarif([], files=0))
        assert log["runs"][0]["results"] == []

    def test_cli_emits_sarif(self, tmp_path, capsys, monkeypatch):
        _write_package(tmp_path, {"a.py": "X = 1\n"})
        monkeypatch.chdir(tmp_path)
        code = lint_main(
            [
                "pkg", "--format", "sarif", "--no-baseline",
                "--no-flow-cache", "--select", "REP004",
            ]
        )
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"


# ---------------------------------------------------------------------
# baseline --update merging
# ---------------------------------------------------------------------


class TestBaselineMerge:
    def test_merge_keeps_existing_and_adds_new(self):
        existing = [("src/a.py", "REP004", "time.time()")]
        findings = [
            Finding(
                rule="REP015", path="src/b.py", line=3, col=0,
                message="m", snippet="parallel_map(f, xs)",
            ),
            Finding(
                rule="REP004", path="src/a.py", line=9, col=0,
                message="m", snippet="time.time()",
            ),
        ]
        merged = merge_baseline(existing, findings)
        assert ("src/a.py", "REP004", "time.time()") in merged
        assert ("src/b.py", "REP015", "parallel_map(f, xs)") in merged
        # The REP004 finding matched the existing entry: no duplicate.
        assert len(merged) == 2

    def test_merge_preserves_stale_entries(self):
        # A baselined finding that no longer fires must survive --update.
        existing = [("src/gone.py", "REP001", "np.random.rand()")]
        merged = merge_baseline(existing, [])
        assert merged == existing

    def test_merge_respects_multiplicity(self):
        fp = ("src/a.py", "REP002", "x == y")
        finding = Finding(
            rule="REP002", path="src/a.py", line=1, col=0,
            message="m", snippet="x == y",
        )
        merged = merge_baseline([fp], [finding, finding])
        assert merged.count(fp) == 2

    def test_cli_baseline_update_round_trip(self, tmp_path, monkeypatch):
        _write_package(
            tmp_path,
            {
                "worker.py": """
                    _SEEN = []

                    def record(name):
                        _SEEN.append(name)
                        return name
                    """,
                "driver.py": """
                    from repro.parallel import parallel_map
                    from pkg.worker import record

                    def run(names):
                        return parallel_map(record, names)
                    """,
            },
        )
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        # Seed the baseline with a foreign rule's entry.
        save_fingerprints(
            baseline, [("src/old.py", "REP001", "np.random.rand()")]
        )
        code = lint_main(
            ["baseline", "--update", "--baseline", str(baseline), "pkg"]
        )
        assert code == 0
        merged = load_baseline(baseline)
        assert ("src/old.py", "REP001", "np.random.rand()") in merged
        assert any(fp[1] == "REP015" for fp in merged)
        # The lint run is now clean against the merged baseline.
        code = lint_main(
            ["pkg", "--baseline", str(baseline), "--no-flow-cache"]
        )
        assert code == 0

    def test_save_baseline_round_trip_still_works(self, tmp_path):
        finding = Finding(
            rule="REP015", path="src/b.py", line=3, col=0,
            message="m", snippet="parallel_map(f, xs)",
        )
        path = tmp_path / "b.json"
        save_baseline(path, [finding])
        assert load_baseline(path) == [finding.fingerprint]


# ---------------------------------------------------------------------
# --changed scoping
# ---------------------------------------------------------------------


class TestChangedScoping:
    def test_changed_only_reports_in_reverse_cone(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            {
                "worker.py": """
                    _SEEN = []

                    def record(name):
                        _SEEN.append(name)
                        return name
                    """,
                "driver.py": """
                    from repro.parallel import parallel_map
                    from pkg.worker import record

                    def run(names):
                        return parallel_map(record, names)
                    """,
                "other.py": "import time\n\n\ndef t():\n    return time.time()\n",
            },
        )
        config = LintConfig(baseline=None, root=tmp_path)
        # Changing only worker.py: the REP015 finding in driver.py is in
        # worker's reverse cone and must be reported; other.py's
        # per-file REP004 finding must not (file unchanged).
        findings = lint_paths(
            [tmp_path], config, changed_only=[pkg / "worker.py"]
        )
        assert [f.rule for f in findings] == ["REP015"]
        assert findings[0].path.endswith("driver.py")

    def test_changed_only_keeps_per_file_rules_on_changed_files(
        self, tmp_path
    ):
        pkg = _write_package(
            tmp_path,
            {"clocky.py": "import time\n\n\ndef t():\n    return time.time()\n"},
        )
        config = LintConfig(baseline=None, root=tmp_path)
        findings = lint_paths(
            [tmp_path], config, changed_only=[pkg / "clocky.py"]
        )
        assert any(f.rule == "REP004" for f in findings)
