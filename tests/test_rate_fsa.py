"""SPECrate multi-copy runs and campaign turnaround models."""

import pytest

from repro.errors import SimulationError
from repro.fsa import (
    SimulationSpeeds,
    detailed_full_cost,
    fsa_cost,
    parallel_replay_cost,
    serial_replay_cost,
)
from repro.pinball.pinball import ProgramRecipe, RegionalPinball
from repro.rate import SPECrateRunner
from repro.workloads.spec2017 import build_program

from conftest import QUICK


@pytest.fixture(scope="module")
def rate_program():
    # Full-size slices: LLC contention only shows once single-copy runs
    # actually enjoy L3 locality that extra copies can destroy.
    return build_program("505.mcf_r", slice_size=30_000, total_slices=120)


@pytest.fixture(scope="module")
def contended_runner():
    """A machine whose LLC fits one copy's working set but not four."""
    from repro.config import (
        SNIPER_SIM,
        CacheConfig,
        CacheHierarchyConfig,
        SystemConfig,
    )

    caches = SNIPER_SIM.caches
    system = SystemConfig(
        core=SNIPER_SIM.core,
        caches=CacheHierarchyConfig(
            l1i=caches.l1i,
            l1d=caches.l1d,
            l2=caches.l2,
            l3=CacheConfig("L3", size_bytes=512 * 1024, line_size=64,
                           associativity=16, latency_cycles=30),
        ),
        memory_latency_cycles=SNIPER_SIM.memory_latency_cycles,
        memory_level_parallelism=SNIPER_SIM.memory_level_parallelism,
    )
    return SPECrateRunner(system=system)


class TestSPECrate:
    def test_single_copy(self, rate_program):
        result = SPECrateRunner().run(rate_program, 1, num_slices=40)
        assert result.num_copies == 1
        assert result.average_cpi > 0
        assert result.copies[0].instructions > 0

    def test_copies_identical_streams(self, rate_program):
        result = SPECrateRunner().run(rate_program, 3, num_slices=30)
        counts = {c.instructions for c in result.copies}
        assert len(counts) == 1  # every copy runs the same program

    def test_contention_degrades_cpi(self, rate_program, contended_runner):
        single = contended_runner.run(rate_program, 1, num_slices=40)
        quad = contended_runner.run(rate_program, 4, num_slices=40)
        assert quad.average_cpi > single.average_cpi * 1.02
        assert quad.shared_l3_miss_rate > single.shared_l3_miss_rate

    def test_throughput_sublinear(self, rate_program, contended_runner):
        single = contended_runner.run(rate_program, 1, num_slices=40)
        quad = contended_runner.run(rate_program, 4, num_slices=40)
        speedup = quad.throughput_vs(single)
        assert 1.0 < speedup < 3.95

    def test_more_copies_more_l3_traffic(self, rate_program):
        runner = SPECrateRunner()
        two = runner.run(rate_program, 2, num_slices=30)
        four = runner.run(rate_program, 4, num_slices=30)
        assert four.shared_l3_accesses > two.shared_l3_accesses

    def test_validation(self, rate_program):
        runner = SPECrateRunner()
        with pytest.raises(SimulationError):
            runner.run(rate_program, 0)
        with pytest.raises(SimulationError):
            runner.run(rate_program, 2, num_slices=10 ** 9)


def pinball(start=100, warmup=17, length=1, total=600):
    recipe = ProgramRecipe("620.omnetpp_s", 30000, total)
    return RegionalPinball(recipe=recipe, region_start=start,
                           region_length=length, weight=0.1,
                           warmup_slices=warmup)


class TestTurnaround:
    def test_detailed_full_is_slowest(self):
        pinballs = [pinball(100 + 30 * i) for i in range(10)]
        whole = 2_000e9  # 2 T instructions
        full = detailed_full_cost(whole)
        serial = serial_replay_cost(pinballs)
        fsa = fsa_cost(pinballs, whole)
        assert full.seconds > serial.seconds
        assert full.seconds > fsa.seconds

    def test_detailed_full_magnitude(self):
        # 2 T instructions at 200 KIPS ~ 115 days: the paper's motivation.
        cost = detailed_full_cost(2_000e9)
        assert 100 < cost.days < 130

    def test_parallel_scales_until_point_count(self):
        pinballs = [pinball(100 + 30 * i) for i in range(8)]
        serial = serial_replay_cost(pinballs)
        two = parallel_replay_cost(pinballs, hosts=2)
        eight = parallel_replay_cost(pinballs, hosts=8)
        many = parallel_replay_cost(pinballs, hosts=100)
        assert two.seconds < serial.seconds
        assert eight.seconds <= two.seconds
        # More hosts than pinballs cannot help further.
        assert many.seconds == pytest.approx(eight.seconds)

    def test_parallel_one_host_equals_serial(self):
        pinballs = [pinball(100 + 30 * i) for i in range(5)]
        assert parallel_replay_cost(pinballs, 1).seconds == pytest.approx(
            serial_replay_cost(pinballs).seconds
        )

    def test_fsa_trades_checkpointing_for_one_pass(self):
        pinballs = [pinball(100 + 30 * i) for i in range(10)]
        short_program = 50e9
        long_program = 20_000e9
        fsa_short = fsa_cost(pinballs, short_program)
        fsa_long = fsa_cost(pinballs, long_program)
        serial = serial_replay_cost(pinballs)
        # FSA wins on short programs (no warmup replay), loses when the
        # fast-forward distance dwarfs the regions.
        assert fsa_short.seconds < serial.seconds
        assert fsa_long.seconds > fsa_short.seconds

    def test_truncated_warmup_cheaper(self):
        early = serial_replay_cost([pinball(start=3)])
        late = serial_replay_cost([pinball(start=300)])
        assert early.seconds < late.seconds

    def test_speed_validation(self):
        with pytest.raises(SimulationError):
            SimulationSpeeds(detailed_ips=0)

    def test_cost_validation(self):
        with pytest.raises(SimulationError):
            detailed_full_cost(0)
        with pytest.raises(SimulationError):
            serial_replay_cost([])
        with pytest.raises(SimulationError):
            parallel_replay_cost([pinball()], hosts=0)
        with pytest.raises(SimulationError):
            fsa_cost([pinball(length=100)], 10)
