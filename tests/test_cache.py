"""Cache level, hierarchy, and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheHierarchy, CacheLevel, CacheStats
from repro.config import CacheConfig, CacheHierarchyConfig
from repro.errors import SimulationError


def reference_lru_misses(lines, num_sets, associativity, granularity_shift=0):
    """Straightforward LRU model to check the optimized paths against."""
    sets = {}
    misses = []
    for line in lines:
        line = int(line) >> granularity_shift
        idx = line % num_sets
        tag = line // num_sets
        entry = sets.setdefault(idx, [])
        if tag in entry:
            entry.remove(tag)
            entry.append(tag)
            misses.append(False)
        else:
            if len(entry) >= associativity:
                entry.pop(0)
            entry.append(tag)
            misses.append(True)
    return np.array(misses)


def make_level(size=1024, line=32, assoc=4, record=True):
    return CacheLevel(
        CacheConfig("T", size_bytes=size, line_size=line, associativity=assoc),
        recording=record,
    )


class TestCacheLevelBasics:
    def test_first_access_misses(self):
        level = make_level()
        assert level.access_many(np.array([42]))[0]

    def test_second_access_hits(self):
        level = make_level()
        level.access_many(np.array([42]))
        assert not level.access_many(np.array([42]))[0]

    def test_stats_accumulate(self):
        level = make_level()
        level.access_many(np.array([1, 2, 1, 2]))
        assert level.stats.accesses == 4
        assert level.stats.misses == 2
        assert level.stats.miss_rate == pytest.approx(0.5)

    def test_recording_off_freezes_stats_but_updates_state(self):
        level = make_level(record=False)
        level.access_many(np.array([7]))
        assert level.stats.accesses == 0
        level.recording = True
        assert not level.access_many(np.array([7]))[0]

    def test_reset_flushes(self):
        level = make_level()
        level.access_many(np.array([7]))
        level.reset()
        assert level.stats.accesses == 0
        assert level.access_many(np.array([7]))[0]

    def test_flush_keeps_stats(self):
        level = make_level()
        level.access_many(np.array([7]))
        level.flush()
        assert level.stats.accesses == 1
        assert level.resident_line_count() == 0

    def test_empty_batch(self):
        level = make_level()
        assert level.access_many(np.array([], dtype=np.int64)).size == 0

    def test_negative_address_rejected(self):
        level = make_level()
        with pytest.raises(SimulationError):
            level.access_many(np.array([-1]))

    def test_line_below_trace_granularity_rejected(self):
        with pytest.raises(SimulationError):
            make_level(line=16)

    def test_resident_count_bounded_by_capacity(self):
        level = make_level(size=256, assoc=2)  # 8 lines
        level.access_many(np.arange(100, dtype=np.int64))
        assert level.resident_line_count() == 8


class TestLruEviction:
    def test_lru_victim_selected(self):
        # 2 lines capacity in one set: access A, B, A, then C evicts B.
        level = make_level(size=64, assoc=2)  # 2 lines, 1 set
        a, b, c = 0, 1, 2
        level.access_many(np.array([a, b, a, c]))
        miss = level.access_many(np.array([a, b]))
        assert not miss[0]  # A stayed (recently used)
        assert miss[1]      # B was the LRU victim

    def test_direct_mapped_conflict(self):
        level = make_level(size=64, line=32, assoc=1)  # 2 sets
        # Lines 0 and 2 share set 0; they evict each other.
        level.access_many(np.array([0, 2]))
        assert level.access_many(np.array([0]))[0]


class TestAgainstReference:
    @pytest.mark.parametrize("assoc", [1, 2, 4, 16])
    def test_matches_reference_model(self, assoc, rng):
        level = make_level(size=2048, assoc=assoc)  # 64 lines
        lines = rng.integers(0, 200, size=3000)
        expected = reference_lru_misses(lines, level.config.num_sets, assoc)
        got = level.access_many(lines)
        assert np.array_equal(got, expected)

    def test_direct_mapped_cross_batch_state(self, rng):
        level = make_level(size=1024, assoc=1)
        all_lines = rng.integers(0, 100, size=2000)
        expected = reference_lru_misses(all_lines, level.config.num_sets, 1)
        got = np.concatenate(
            [level.access_many(chunk) for chunk in np.array_split(all_lines, 7)]
        )
        assert np.array_equal(got, expected)

    def test_granularity_shift(self, rng):
        level = make_level(size=2048, line=64, assoc=2)
        lines = rng.integers(0, 500, size=1000)
        expected = reference_lru_misses(
            lines, level.config.num_sets, 2, granularity_shift=1
        )
        assert np.array_equal(level.access_many(lines), expected)

    @settings(max_examples=40, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 255), min_size=1, max_size=400),
        assoc_pow=st.integers(0, 3),
    )
    def test_property_matches_reference(self, lines, assoc_pow):
        assoc = 2 ** assoc_pow
        level = CacheLevel(
            CacheConfig("T", size_bytes=32 * 16 * assoc, line_size=32,
                        associativity=assoc)
        )
        arr = np.array(lines, dtype=np.int64)
        expected = reference_lru_misses(arr, level.config.num_sets, assoc)
        assert np.array_equal(level.access_many(arr), expected)

    @settings(max_examples=25, deadline=None)
    @given(lines=st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_property_no_capacity_misses_when_everything_fits(self, lines):
        # 64-line fully-sized cache: every line misses at most once.
        level = make_level(size=64 * 32, assoc=4)
        arr = np.array(lines, dtype=np.int64)
        misses = level.access_many(arr)
        assert misses.sum() == len(set(lines))


class TestCacheStats:
    def test_hits_property(self):
        stats = CacheStats(accesses=10, misses=3)
        assert stats.hits == 7

    def test_zero_access_miss_rate(self):
        assert CacheStats().miss_rate == 0.0

    def test_record_validation(self):
        stats = CacheStats()
        with pytest.raises(ValueError):
            stats.record(accesses=1, misses=2)

    def test_merge_and_copy(self):
        a = CacheStats(10, 4)
        b = a.copy()
        b.merge(CacheStats(5, 1))
        assert (b.accesses, b.misses) == (15, 5)
        assert (a.accesses, a.misses) == (10, 4)


def small_hierarchy():
    return CacheHierarchy(
        CacheHierarchyConfig(
            l1i=CacheConfig("L1I", 256, 32, 1),
            l1d=CacheConfig("L1D", 256, 32, 1),
            l2=CacheConfig("L2", 1024, 32, 1),
            l3=CacheConfig("L3", 4096, 32, 1),
        )
    )


class TestHierarchy:
    def test_miss_filtering(self):
        h = small_hierarchy()
        lines = np.arange(100, dtype=np.int64)
        h.access_data(lines)
        snap = h.snapshot()
        assert snap.accesses("L1D") == 100
        # Everything misses L1D (8 lines) so everything reaches L2, etc.
        assert snap.accesses("L2") == 100
        assert snap.accesses("L3") == 100

    def test_l2_sees_only_l1_misses(self):
        h = small_hierarchy()
        lines = np.zeros(50, dtype=np.int64)
        h.access_data(lines)
        snap = h.snapshot()
        assert snap.accesses("L1D") == 50
        assert snap.accesses("L2") == 1  # only the first (cold) access

    def test_ifetch_goes_through_l1i(self):
        h = small_hierarchy()
        h.access_ifetch(np.array([1, 2, 1], dtype=np.int64))
        snap = h.snapshot()
        assert snap.accesses("L1I") == 3
        assert snap.accesses("L1D") == 0

    def test_unified_l2_shared_by_code_and_data(self):
        h = small_hierarchy()
        h.access_ifetch(np.array([77], dtype=np.int64))
        h.access_data(np.array([77], dtype=np.int64))
        snap = h.snapshot()
        # The data access misses L1D but hits L2 (fetched by the ifetch).
        assert snap.levels["L2"].misses == 1
        assert snap.levels["L2"].accesses == 2

    def test_recording_toggle(self):
        h = small_hierarchy()
        h.set_recording(False)
        h.access_data(np.arange(20, dtype=np.int64))
        assert h.snapshot().accesses("L1D") == 0
        h.set_recording(True)
        h.access_data(np.arange(20, dtype=np.int64))
        snap = h.snapshot()
        assert snap.accesses("L1D") == 20
        # L2 was fully warmed during the non-recording pass.
        assert snap.levels["L2"].misses == 0

    def test_reset(self):
        h = small_hierarchy()
        h.access_data(np.arange(10, dtype=np.int64))
        h.reset()
        snap = h.snapshot()
        assert snap.accesses("L1D") == 0
        assert all(level.resident_line_count() == 0 for level in h.levels)


def make_pinned_level(assoc, monkeypatch, wave):
    """A CacheLevel whose associative strategy is pinned by threshold."""
    monkeypatch.setattr(CacheLevel, "_WAVE_AMORTIZE", 0 if wave else 10**9)
    return CacheLevel(
        CacheConfig("T", size_bytes=32 * 16 * assoc, line_size=32,
                    associativity=assoc)
    )


class TestWaveStrategy:
    """The vectorized wave path against the sequential oracle."""

    @pytest.mark.parametrize("assoc", [2, 4, 8, 16, 32])
    def test_differential_against_oracle(self, assoc, rng, monkeypatch):
        wave = make_pinned_level(assoc, monkeypatch, wave=True)
        oracle = CacheLevel(wave.config, reference=True)
        for round_index in range(20):
            n = int(rng.integers(1, 3000))
            lines = rng.integers(0, int(rng.integers(40, 2000)), size=n)
            writes = rng.random(n) < 0.3
            assert np.array_equal(
                wave.access_many(lines, writes),
                oracle.access_many(lines, writes),
            )
            if round_index % 5 == 2:
                installs = rng.integers(0, 500, size=64)
                wave.install(installs)
                oracle.install(installs)
        assert wave.stats.misses == oracle.stats.misses
        assert wave.stats.writebacks == oracle.stats.writebacks
        assert wave.resident_line_count() == oracle.resident_line_count()

    @settings(max_examples=40, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 255), min_size=1, max_size=400),
        write_mask=st.integers(0, 2**16 - 1),
        assoc_pow=st.integers(1, 4),
    )
    def test_property_wave_matches_oracle(self, lines, write_mask, assoc_pow):
        assoc = 2 ** assoc_pow
        config = CacheConfig("T", size_bytes=32 * 8 * assoc, line_size=32,
                             associativity=assoc)
        wave = CacheLevel(config)
        wave._WAVE_AMORTIZE = 0
        oracle = CacheLevel(config, reference=True)
        arr = np.array(lines, dtype=np.int64)
        writes = np.array(
            [(write_mask >> (i % 16)) & 1 == 1 for i in range(len(lines))]
        )
        assert np.array_equal(
            wave.access_many(arr, writes), oracle.access_many(arr, writes)
        )
        assert wave.stats.writebacks == oracle.stats.writebacks
        assert wave.resident_line_count() == oracle.resident_line_count()

    def test_wave_collapses_repeated_lines(self, monkeypatch):
        # A run of identical accesses (an ifetch stream inside one line)
        # costs one miss and leaves one resident line.
        level = make_pinned_level(4, monkeypatch, wave=True)
        miss = level.access_many(np.array([9, 9, 9, 9, 9]))
        assert miss.tolist() == [True, False, False, False, False]
        assert level.resident_line_count() == 1

    def test_adaptive_choice_hot_traffic_stays_sequential(self):
        level = make_level(size=32 * 16 * 4, assoc=4)
        # 4000 accesses into a couple of sets: far too deep for waves.
        level.access_many(np.array([0, 1, 16, 17] * 1000))
        assert level._sets is not None
        assert level._way_state is None

    def test_adaptive_choice_spread_traffic_goes_vectorized(self, rng):
        level = make_level(size=32 * 1024 * 4, assoc=4)  # 1024 sets
        level.access_many(rng.integers(0, 100000, size=8192))
        assert level._way_state is not None
        assert level._sets is None

    def test_strategy_survives_flush(self, rng):
        level = make_level(size=32 * 1024 * 4, assoc=4)
        level.access_many(rng.integers(0, 100000, size=8192))
        level.flush()
        assert level.resident_line_count() == 0
        assert level._way_state is not None  # choice is sticky

    def test_untouched_level_reports_empty(self):
        level = make_level(assoc=4)
        assert level.resident_line_count() == 0
        level.flush()  # no state allocated yet: a no-op
        assert level.resident_line_count() == 0
