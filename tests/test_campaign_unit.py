"""Unit tests for the campaign service's pieces (no sockets, no forks).

The wire protocol, the scheduling queue, submission validation, the
dedup key, the server ledger, and the server's submit/dedup logic
driven directly as objects.  The end-to-end daemon behaviour (real
subprocesses, kill -9, drain) lives in ``test_campaign_service.py``.
"""

from __future__ import annotations

import pytest

from repro.campaign.jobs import (
    Job,
    job_key,
    result_params,
    summarize_jobs,
    validate_submission,
)
from repro.campaign.ledger import ServerLedger
from repro.campaign.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    check_ok,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    request_frame,
)
from repro.campaign.queue import JobQueue
from repro.errors import CampaignServiceError, ProtocolError


class TestProtocol:
    def test_round_trip(self):
        frame = request_frame("submit", experiment="fig8", kwargs={})
        decoded = decode_frame(encode_frame(frame))
        assert decoded["op"] == "submit"
        assert decoded["experiment"] == "fig8"
        assert decoded["v"] == PROTOCOL

    def test_version_mismatch_rejected(self):
        raw = b'{"v": "repro-campaign-v999", "op": "ping"}\n'
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_frame(raw)

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_frame(b'{"op": "ping"}\n')

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b'[1, 2]\n')

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b'not json at all\n')

    def test_oversized_frame_rejected_both_ways(self):
        big = {"op": "submit", "blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(big)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_unknown_op_rejected_client_side(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            request_frame("reboot")

    def test_check_ok_passes_and_raises(self):
        assert check_ok(ok_frame(x=1))["x"] == 1
        with pytest.raises(ProtocolError, match="refused-code"):
            check_ok(error_frame("refused-code", "nope"))


class TestJobQueue:
    def test_priority_order(self):
        q = JobQueue()
        q.push("low", 200)
        q.push("high", 10)
        q.push("mid", 100)
        assert [q.pop(), q.pop(), q.pop()] == ["high", "mid", "low"]
        assert q.pop() is None

    def test_fifo_within_priority(self):
        q = JobQueue()
        for name in ("a", "b", "c"):
            q.push(name, 100)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_lazy_cancellation(self):
        q = JobQueue()
        q.push("a", 1)
        q.push("b", 2)
        q.drop("a")
        assert len(q) == 1
        assert q.pop() == "b"
        assert q.pop() is None


class TestValidateSubmission:
    def test_unknown_experiment(self):
        with pytest.raises(CampaignServiceError, match="unknown experiment"):
            validate_submission("nope", {})

    def test_unknown_kwarg(self):
        with pytest.raises(CampaignServiceError, match="keyword"):
            validate_submission("fig8", {"frobnicate": 1})

    def test_unknown_benchmark(self):
        with pytest.raises(CampaignServiceError, match="unknown benchmarks"):
            validate_submission("fig8", {"benchmarks": ["999.bogus_r"]})

    def test_bad_jobs_value(self):
        with pytest.raises(CampaignServiceError, match="jobs"):
            validate_submission("fig8", {"jobs": -1})
        with pytest.raises(CampaignServiceError, match="jobs"):
            validate_submission("fig8", {"jobs": True})

    def test_valid_submission_normalizes(self):
        spec, kwargs = validate_submission(
            "fig8", {"benchmarks": ("505.mcf_r",), "jobs": 2}
        )
        assert spec.name == "fig8"
        assert kwargs["benchmarks"] == ["505.mcf_r"]
        assert kwargs["jobs"] == 2


class TestJobKey:
    def test_jobs_kwarg_does_not_fragment_key(self, tmp_path):
        from repro.parallel.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        one = job_key(store, "fig8", {"benchmarks": ["505.mcf_r"], "jobs": 1})
        two = job_key(store, "fig8", {"benchmarks": ["505.mcf_r"], "jobs": 8})
        assert one == two

    def test_matches_registry_result_cache_key(self, tmp_path):
        """The dedup predicate and the result cache share one key fn."""
        from repro.experiments.registry import _result_key_params, get_spec
        from repro.parallel.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        spec = get_spec("fig8")
        kwargs = {"benchmarks": ["505.mcf_r"], "jobs": 3}
        assert result_params("fig8", kwargs) == _result_key_params(
            spec, kwargs
        )
        assert job_key(store, "fig8", kwargs) == store.key(
            "result", _result_key_params(spec, kwargs)
        )

    def test_no_store_means_no_key(self):
        assert job_key(None, "fig8", {}) is None


class TestJobRecord:
    def test_describe_round_trip(self):
        job = Job(
            id="job-0007",
            experiment="fig8",
            kwargs={"benchmarks": ["505.mcf_r"]},
            priority=5,
            key="abc",
            state="running",
            reused_items=2,
            completed_items=3,
            total_items=4,
        )
        clone = Job.from_record(job.describe())
        assert clone.describe() == job.describe()

    def test_from_record_requires_identity(self):
        with pytest.raises(CampaignServiceError, match="missing"):
            Job.from_record({"experiment": "fig8"})

    def test_unknown_fields_ignored(self):
        job = Job.from_record(
            {"id": "job-1", "experiment": "fig8", "future_field": 42}
        )
        assert job.id == "job-1"

    def test_summarize(self):
        rows = summarize_jobs([Job(id="job-1", experiment="fig8")])
        assert rows[0]["state"] == "queued"


class TestServerLedger:
    def test_last_write_wins_replay(self, tmp_path):
        ledger = ServerLedger(tmp_path)
        job = Job(id="job-0001", experiment="fig8")
        ledger.record_submit(job)
        job.state = "running"
        ledger.record_state(job)
        job.state = "done"
        ledger.record_state(job)
        ledger.close()

        fresh = ServerLedger(tmp_path)
        fresh.acquire()
        jobs = fresh.load()
        fresh.close()
        assert len(jobs) == 1
        assert jobs[0].state == "done"

    def test_truncated_final_line_skipped(self, tmp_path):
        ledger = ServerLedger(tmp_path)
        ledger.record_submit(Job(id="job-0001", experiment="fig8"))
        ledger.close()
        # Simulate the torn append of a hard kill.
        path = ledger.journal.path
        with open(path, "ab") as handle:
            handle.write(b'{"event": "job", "action": "state", "jo')
        fresh = ServerLedger(tmp_path)
        jobs = fresh.load()
        assert [j.id for j in jobs] == ["job-0001"]

    def test_singleton_lock(self, tmp_path):
        from repro.errors import JournalLockedError

        first = ServerLedger(tmp_path)
        first.acquire()
        second = ServerLedger(tmp_path)
        with pytest.raises(JournalLockedError):
            second.acquire()
        first.close()
        second.acquire()
        second.close()


class TestServerSubmitDedup:
    """Drive CampaignServer.submit directly — no event loop needed."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.campaign.server import CampaignServer
        from repro.parallel.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        srv = CampaignServer(store, tmp_path / "sock")
        srv.boot()
        yield srv
        srv.ledger.close()

    def test_identical_submissions_dedup(self, server):
        first = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        second = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        assert first["deduped"] is False
        assert second["deduped"] is True
        assert second["job"]["id"] == first["job"]["id"]
        counters = server.recorder.metrics.snapshot()["counters"]
        assert counters.get("campaign.dedup.hit{source=inflight}") == 1

    def test_jobs_kwarg_still_dedups(self, server):
        first = server.submit("fig8", {"benchmarks": ["505.mcf_r"], "jobs": 1})
        second = server.submit("fig8", {"benchmarks": ["505.mcf_r"], "jobs": 4})
        assert second["deduped"] is True
        assert second["job"]["id"] == first["job"]["id"]

    def test_different_kwargs_do_not_dedup(self, server):
        first = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        second = server.submit("fig8", {"benchmarks": ["520.omnetpp_r"]})
        assert second["deduped"] is False
        assert second["job"]["id"] != first["job"]["id"]

    def test_stored_result_births_done_job(self, server):
        from repro.campaign.jobs import result_params

        params = result_params("fig8", {"benchmarks": ["505.mcf_r"]})
        server.store.put_json("result", params, {"any": "payload"})
        outcome = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        assert outcome["deduped"] is True
        assert outcome["job"]["state"] == "done"
        assert outcome["job"]["cached"] is True
        counters = server.recorder.metrics.snapshot()["counters"]
        assert counters.get("campaign.dedup.hit{source=store}") == 1

    def test_invalid_submission_refused(self, server):
        with pytest.raises(CampaignServiceError):
            server.submit("fig8", {"benchmarks": ["999.bogus_r"]})

    def test_draining_refuses_submissions(self, server):
        server.request_drain()
        with pytest.raises(CampaignServiceError, match="draining"):
            server.submit("fig8", {})

    def test_cancel_queued_job(self, server):
        job_id = server.submit("fig8", {})["job"]["id"]
        job = server.cancel(job_id)
        assert job.state == "cancelled"
        # A new identical submission is accepted (terminal-failed/
        # cancelled jobs don't hold the dedup slot).
        again = server.submit("fig8", {})
        assert again["deduped"] is False

    def test_ledger_survives_for_resume(self, tmp_path, server):
        server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        server.ledger.close()

        from repro.campaign.server import CampaignServer

        reborn = CampaignServer(
            server.store, tmp_path / "sock", resume=True
        )
        reborn.boot()
        try:
            assert reborn._adopted == 1
            jobs = list(reborn._jobs.values())
            assert jobs[0].resume is True
            assert jobs[0].state == "queued"
        finally:
            reborn.ledger.close()

    def test_boot_without_resume_discards_ledger(self, tmp_path, server):
        server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        server.ledger.close()

        from repro.campaign.server import CampaignServer

        reborn = CampaignServer(server.store, tmp_path / "sock")
        reborn.boot()
        try:
            assert reborn._jobs == {}
        finally:
            reborn.ledger.close()

    def test_requires_store(self, tmp_path):
        from repro.campaign.server import CampaignServer

        with pytest.raises(CampaignServiceError, match="store"):
            CampaignServer(None, tmp_path / "sock")
