"""PCA, hierarchical clustering, suite subsetting, and timeseries."""

import numpy as np
import pytest

from repro.analysis import (
    bbv_transition_series,
    benchmark_features,
    detect_phase_transitions,
    hierarchical_clusters,
    metric_timeline,
    pca,
    select_subset,
)
from repro.errors import SimulationError

from conftest import QUICK


class TestPca:
    def test_shapes_and_ordering(self, rng):
        data = rng.normal(size=(30, 6))
        projected, components, ratio = pca(data, 3)
        assert projected.shape == (30, 3)
        assert components.shape == (3, 6)
        assert (np.diff(ratio) <= 1e-12).all()  # descending variance

    def test_first_component_captures_correlated_features(self, rng):
        # Features are standardized, so dominance comes from correlation:
        # two copies of the same signal share one component.
        signal = rng.normal(size=(100, 1))
        data = np.hstack([
            signal,
            signal + rng.normal(0, 0.01, size=(100, 1)),
            rng.normal(size=(100, 2)),
        ])
        _, _, ratio = pca(data, 2)
        assert ratio[0] > 0.4          # ~2 of 4 units of variance
        assert ratio[0] > 1.5 * ratio[1]

    def test_projection_separates_groups(self, rng):
        a = rng.normal(0, 0.1, size=(20, 5))
        b = rng.normal(4, 0.1, size=(20, 5))
        projected, _, _ = pca(np.vstack([a, b]), 2)
        assert abs(projected[:20, 0].mean() - projected[20:, 0].mean()) > 1.0

    def test_constant_feature_handled(self, rng):
        data = rng.normal(size=(15, 3))
        data[:, 1] = 7.0
        projected, _, _ = pca(data, 2)
        assert np.isfinite(projected).all()

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(SimulationError):
            pca(rng.normal(size=(1, 4)), 1)
        with pytest.raises(SimulationError):
            pca(rng.normal(size=(5, 4)), 5)


class TestHierarchicalClustering:
    def test_recovers_separated_groups(self, rng):
        a = rng.normal(0, 0.1, size=(8, 3))
        b = rng.normal(5, 0.1, size=(6, 3))
        c = rng.normal(-5, 0.1, size=(4, 3))
        labels = hierarchical_clusters(np.vstack([a, b, c]), 3)
        groups = [labels[:8], labels[8:14], labels[14:]]
        for group in groups:
            assert len(set(group.tolist())) == 1
        assert len({g[0] for g in groups}) == 3

    def test_k_one(self, rng):
        labels = hierarchical_clusters(rng.normal(size=(6, 2)), 1)
        assert (labels == 0).all()

    def test_k_equals_n(self, rng):
        labels = hierarchical_clusters(rng.normal(size=(5, 2)), 5)
        assert sorted(labels.tolist()) == [0, 1, 2, 3, 4]

    def test_labels_dense(self, rng):
        labels = hierarchical_clusters(rng.normal(size=(12, 3)), 4)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_rejects_bad_k(self, rng):
        with pytest.raises(SimulationError):
            hierarchical_clusters(rng.normal(size=(4, 2)), 0)
        with pytest.raises(SimulationError):
            hierarchical_clusters(rng.normal(size=(4, 2)), 5)


class TestSubsetting:
    BENCHMARKS = ["620.omnetpp_s", "557.xz_r", "541.leela_r"]

    def test_features_shape(self):
        features, names, feature_names = benchmark_features(
            self.BENCHMARKS, **QUICK
        )
        assert features.shape == (3, len(feature_names))
        assert names == ["620.omnetpp_s", "557.xz_r", "541.leela_r"]
        assert np.isfinite(features).all()

    def test_select_subset(self):
        result = select_subset(self.BENCHMARKS, subset_size=2, **QUICK)
        assert len(result.representatives) == 2
        assert set(result.representatives) <= set(result.benchmarks)
        assert result.labels.size == 3
        members = result.cluster_members()
        assert sum(len(v) for v in members.values()) == 3

    def test_representative_is_cluster_member(self):
        result = select_subset(self.BENCHMARKS, subset_size=2, **QUICK)
        members = result.cluster_members()
        for cluster, representative in enumerate(result.representatives):
            assert representative in members[cluster]

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            benchmark_features([])


class TestTimeseries:
    def test_transition_series_shape(self, small_program):
        distances = bbv_transition_series(small_program)
        assert distances.shape == (small_program.num_slices - 1,)
        assert (distances >= 0).all()
        assert (distances <= 2.0 + 1e-9).all()

    def test_transitions_match_schedule(self, small_program):
        timeline = metric_timeline(
            small_program,
            metric=lambda t: t.memory_reference_count / t.instruction_count,
        )
        # Every schedule boundary produces a BBV distance spike.
        assert timeline.detection_recall(tolerance=0) == 1.0
        # And no spurious transitions inside phases.
        detected = set(timeline.transitions.tolist())
        true = set(timeline.true_transitions.tolist())
        assert detected == true

    def test_metric_values_track_phases(self, small_program):
        timeline = metric_timeline(
            small_program, metric=lambda t: float(t.phase_id)
        )
        assert timeline.values.shape == (small_program.num_slices,)
        assert set(np.unique(timeline.values)) == {0.0, 1.0, 2.0}

    def test_threshold_validation(self, small_program):
        distances = bbv_transition_series(small_program)
        with pytest.raises(SimulationError):
            detect_phase_transitions(distances, threshold=0.0)
        with pytest.raises(SimulationError):
            detect_phase_transitions(np.array([]), threshold=0.5)

    def test_high_threshold_finds_nothing(self, small_program):
        distances = bbv_transition_series(small_program)
        transitions = detect_phase_transitions(distances, threshold=1.99)
        assert transitions.size == 0
