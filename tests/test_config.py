"""Configuration presets (Tables I and III) and geometry validation."""

import pytest

from repro.config import (
    ALLCACHE_SIM,
    ALLCACHE_TABLE_I,
    SNIPER_SIM,
    SNIPER_TABLE_III,
    CacheConfig,
    CacheHierarchyConfig,
    CoreConfig,
    SystemConfig,
    TRACE_LINE_BYTES,
)
from repro.errors import ConfigError


class TestTableI:
    """The allcache configuration must match the paper's Table I."""

    def test_l1i_geometry(self):
        assert ALLCACHE_TABLE_I.l1i.size_bytes == 32 * 1024
        assert ALLCACHE_TABLE_I.l1i.associativity == 32
        assert ALLCACHE_TABLE_I.l1i.line_size == 32

    def test_l1d_geometry(self):
        assert ALLCACHE_TABLE_I.l1d.size_bytes == 32 * 1024
        assert ALLCACHE_TABLE_I.l1d.associativity == 32
        assert ALLCACHE_TABLE_I.l1d.line_size == 32

    def test_l2_direct_mapped_2mb(self):
        assert ALLCACHE_TABLE_I.l2.size_bytes == 2 * 1024 * 1024
        assert ALLCACHE_TABLE_I.l2.associativity == 1

    def test_l3_direct_mapped_16mb(self):
        assert ALLCACHE_TABLE_I.l3.size_bytes == 16 * 1024 * 1024
        assert ALLCACHE_TABLE_I.l3.associativity == 1

    def test_line_sizes_all_32b(self):
        assert all(c.line_size == 32 for c in ALLCACHE_TABLE_I.levels())


class TestTableIII:
    """The Sniper machine must match the paper's Table III."""

    def test_core(self):
        core = SNIPER_TABLE_III.core
        assert core.frequency_ghz == pytest.approx(3.4)
        assert core.pipeline_stages == 19
        assert core.fetch_width == 6
        assert core.issue_width == 4
        assert core.commit_width == 4
        assert core.rob_entries == 168
        assert core.branch_rob_entries == 48
        assert core.branch_misprediction_penalty == 8

    def test_caches(self):
        caches = SNIPER_TABLE_III.caches
        assert caches.l1d.size_bytes == 32 * 1024
        assert caches.l1d.associativity == 8
        assert caches.l2.size_bytes == 256 * 1024
        assert caches.l2.associativity == 8
        assert caches.l3.size_bytes == 8 * 1024 * 1024
        assert caches.l3.associativity == 16
        assert all(c.line_size == 64 for c in caches.levels())

    def test_latencies(self):
        caches = SNIPER_TABLE_III.caches
        assert caches.l1d.latency_cycles == 4
        assert caches.l2.latency_cycles == 10
        assert caches.l3.latency_cycles == 30


class TestScaledPresets:
    """Scaled hierarchies must preserve the structural relationships."""

    def test_allcache_sim_ordering(self):
        sim = ALLCACHE_SIM
        assert sim.l1d.num_lines < sim.l2.num_lines < sim.l3.num_lines

    def test_sniper_sim_l2_l3_ratio_preserved(self):
        # Table III has a 1:32 L2:L3 ratio; the scaled machine keeps it.
        full = SNIPER_TABLE_III.caches
        sim = SNIPER_SIM.caches
        assert full.l3.size_bytes // full.l2.size_bytes == 32
        assert sim.l3.size_bytes // sim.l2.size_bytes == 32

    def test_line_sizes_kept(self):
        assert all(c.line_size == 32 for c in ALLCACHE_SIM.levels())
        assert all(c.line_size == 64 for c in SNIPER_SIM.caches.levels())


class TestCacheConfig:
    def test_num_sets_and_lines(self):
        cfg = CacheConfig("X", size_bytes=4096, line_size=32, associativity=4)
        assert cfg.num_lines == 128
        assert cfg.num_sets == 32

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", size_bytes=4096, line_size=48, associativity=1)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", size_bytes=5000, line_size=32, associativity=4)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", size_bytes=0, line_size=32, associativity=1)
        with pytest.raises(ConfigError):
            CacheConfig("X", size_bytes=4096, line_size=32, associativity=0)

    def test_scaled_halving(self):
        cfg = CacheConfig("X", size_bytes=4096, line_size=32, associativity=4)
        half = cfg.scaled(0.5)
        assert half.num_sets == 16
        assert half.associativity == 4
        assert half.line_size == 32

    def test_scaled_rejects_non_positive_factor(self):
        cfg = CacheConfig("X", size_bytes=4096, line_size=32, associativity=4)
        with pytest.raises(ConfigError):
            cfg.scaled(0.0)

    def test_scaled_never_below_one_set(self):
        cfg = CacheConfig("X", size_bytes=4096, line_size=32, associativity=4)
        tiny = cfg.scaled(1e-9)
        assert tiny.num_sets == 1

    def test_trace_line_granularity_constant(self):
        assert TRACE_LINE_BYTES == 32


class TestCoreAndSystemConfig:
    def test_core_rejects_bad_frequency(self):
        with pytest.raises(ConfigError):
            CoreConfig(frequency_ghz=0.0)

    def test_core_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=0)

    def test_system_rejects_bad_memory_latency(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                core=CoreConfig(),
                caches=SNIPER_TABLE_III.caches,
                memory_latency_cycles=0,
            )

    def test_system_rejects_mlp_below_one(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                core=CoreConfig(),
                caches=SNIPER_TABLE_III.caches,
                memory_level_parallelism=0.5,
            )

    def test_hierarchy_scaled(self):
        scaled = ALLCACHE_TABLE_I.scaled(0.25)
        assert isinstance(scaled, CacheHierarchyConfig)
        assert scaled.l2.num_sets == ALLCACHE_TABLE_I.l2.num_sets // 4
