"""Instruction classes, basic blocks, and slice traces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.isa import (
    INSTRUCTION_CLASS_NAMES,
    NUM_INSTRUCTION_CLASSES,
    BasicBlock,
    CodeRegion,
    InstructionClass,
    SliceTrace,
)


class TestInstructionClass:
    def test_four_classes_in_paper_order(self):
        assert NUM_INSTRUCTION_CLASSES == 4
        assert INSTRUCTION_CLASS_NAMES == ("NO_MEM", "MEM_R", "MEM_W", "MEM_RW")

    def test_memory_read_semantics(self):
        assert InstructionClass.MEM_R.reads_memory
        assert InstructionClass.MEM_RW.reads_memory
        assert not InstructionClass.MEM_W.reads_memory
        assert not InstructionClass.NO_MEM.reads_memory

    def test_memory_write_semantics(self):
        assert InstructionClass.MEM_W.writes_memory
        assert InstructionClass.MEM_RW.writes_memory
        assert not InstructionClass.MEM_R.writes_memory

    def test_references_memory(self):
        assert not InstructionClass.NO_MEM.references_memory
        assert all(
            c.references_memory
            for c in InstructionClass if c is not InstructionClass.NO_MEM
        )

    def test_values_are_dense(self):
        assert [c.value for c in InstructionClass] == [0, 1, 2, 3]


class TestBasicBlock:
    def test_class_counts_scale_with_executions(self):
        block = BasicBlock(block_id=1, size=10, mix=(0.5, 0.3, 0.15, 0.05))
        counts = block.class_counts(executions=4)
        assert counts.sum() == pytest.approx(40)
        assert counts[0] == pytest.approx(20)

    def test_rejects_zero_size(self):
        with pytest.raises(WorkloadError):
            BasicBlock(block_id=1, size=0, mix=(1.0, 0.0, 0.0, 0.0))

    def test_rejects_bad_mix_length(self):
        with pytest.raises(WorkloadError):
            BasicBlock(block_id=1, size=5, mix=(0.5, 0.5))

    def test_rejects_unnormalized_mix(self):
        with pytest.raises(WorkloadError):
            BasicBlock(block_id=1, size=5, mix=(0.5, 0.3, 0.3, 0.3))


class TestCodeRegion:
    def _blocks(self, n=3):
        return [
            BasicBlock(block_id=i, size=4 + i, mix=(0.7, 0.2, 0.08, 0.02))
            for i in range(n)
        ]

    def test_frequencies_normalized(self):
        region = CodeRegion(0, self._blocks(), frequencies=np.array([2.0, 1.0, 1.0]))
        assert region.frequencies.sum() == pytest.approx(1.0)
        assert region.frequencies[0] == pytest.approx(0.5)

    def test_default_uniform_frequencies(self):
        region = CodeRegion(0, self._blocks(4))
        assert np.allclose(region.frequencies, 0.25)

    def test_expected_mix_normalized(self):
        region = CodeRegion(0, self._blocks())
        mix = region.expected_mix()
        assert mix.shape == (4,)
        assert mix.sum() == pytest.approx(1.0)

    def test_instructions_per_entry(self):
        region = CodeRegion(0, self._blocks(2), frequencies=np.array([1.0, 1.0]))
        assert region.instructions_per_entry == pytest.approx((4 + 5) / 2)

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            CodeRegion(0, [])

    def test_rejects_misaligned_frequencies(self):
        with pytest.raises(WorkloadError):
            CodeRegion(0, self._blocks(3), frequencies=np.array([1.0, 1.0]))

    def test_rejects_zero_sum_frequencies(self):
        with pytest.raises(WorkloadError):
            CodeRegion(0, self._blocks(2), frequencies=np.array([0.0, 0.0]))


def _trace(**overrides):
    params = dict(
        index=0,
        phase_id=0,
        instruction_count=100,
        block_counts=np.array([5, 3, 0], dtype=np.int64),
        class_counts=np.array([50, 30, 15, 5], dtype=np.int64),
        mem_lines=np.array([1, 2, 3], dtype=np.int64),
        mem_is_write=np.array([False, True, False]),
        ifetch_lines=np.array([10, 11], dtype=np.int64),
        branch_count=12,
        branch_entropy=0.3,
    )
    params.update(overrides)
    return SliceTrace(**params)


class TestSliceTrace:
    def test_reference_counts(self):
        trace = _trace()
        assert trace.memory_reference_count == 3
        assert trace.read_count == 2
        assert trace.write_count == 1

    def test_bbv_normalized(self):
        bbv = _trace().bbv()
        assert bbv.sum() == pytest.approx(1.0)
        assert bbv[2] == 0.0

    def test_bbv_size_weighting(self):
        trace = _trace()
        weighted = trace.bbv(weight_by_size=np.array([1.0, 10.0, 1.0]))
        unweighted = trace.bbv()
        assert weighted[1] > unweighted[1]

    def test_bbv_empty_rejected(self):
        trace = _trace(block_counts=np.zeros(3, dtype=np.int64))
        with pytest.raises(WorkloadError):
            trace.bbv()

    def test_rejects_zero_instructions(self):
        with pytest.raises(WorkloadError):
            _trace(instruction_count=0)

    def test_rejects_misaligned_memory_arrays(self):
        with pytest.raises(WorkloadError):
            _trace(mem_is_write=np.array([True]))

    def test_rejects_bad_entropy(self):
        with pytest.raises(WorkloadError):
            _trace(branch_entropy=1.5)

    def test_rejects_negative_branches(self):
        with pytest.raises(WorkloadError):
            _trace(branch_count=-1)
