"""Self-application: the shipped source tree must be repro-lint clean.

This is the CI gate the whole subsystem exists for — any new unseeded
RNG, float equality, hash-ordered output, or stray cache geometry in
``src/repro`` fails the tier-1 run unless it is explicitly suppressed
with a justification or added to the committed baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import (
    lint_paths,
    load_baseline,
    load_config,
    partition,
    render_text,
)
from repro.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parents[1]

pytestmark = pytest.mark.lint


def repo_config():
    return load_config(REPO / "pyproject.toml")


def test_src_tree_is_lint_clean():
    config = repo_config()
    findings = lint_paths([REPO / "src" / "repro"], config)
    new, _ = partition(findings, load_baseline(config.baseline_path()))
    assert not new, "\nnew lint findings:\n" + render_text(new)


def test_shipped_baseline_is_empty():
    # The baseline exists for future grandfathering, but this repo ships
    # with every finding fixed; keep it that way.
    config = repo_config()
    assert load_baseline(config.baseline_path()) == []


def test_cli_exits_zero_on_repo(capsys):
    code = lint_main(
        ["--pyproject", str(REPO / "pyproject.toml"), str(REPO / "src" / "repro")]
    )
    capsys.readouterr()
    assert code == 0


def test_cli_exits_nonzero_on_unseeded_rng_fixture(tmp_path, capsys):
    fixture = tmp_path / "fixture.py"
    fixture.write_text(
        "import numpy as np\nRNG = np.random.default_rng()\n", encoding="utf-8"
    )
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.repro-lint]\n", encoding="utf-8")
    code = lint_main(["--pyproject", str(pyproject), str(fixture)])
    out = capsys.readouterr().out
    assert code == 1
    assert "REP001" in out
