"""Checkpoint/resume: the campaign journal and its replay semantics.

The acceptance contract: a campaign interrupted partway (here: items
failing under a ``skip`` policy, the moral equivalent of a kill) leaves
a journal from which ``--resume`` completes the run without recomputing
journaled items, and the resumed output is byte-identical to a clean
uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List

import pytest

from repro.errors import ResilienceError
from repro.experiments.common import configure_cache, map_items, set_store
from repro.experiments.registry import ExperimentSpec, execute
from repro.parallel import parallel_map, resilient_map
from repro.resilience import (
    Campaign,
    CampaignJournal,
    JOURNAL_SCHEMA,
    OnFailure,
    ResiliencePolicy,
    parse_spec,
    using_campaign,
    using_plan,
)
from repro.resilience.journal import decode_value, encode_value
from repro.telemetry.recorder import TraceRecorder, using_recorder

pytestmark = pytest.mark.resilience

ITEMS = list(range(5))
SKIP = ResiliencePolicy(on_failure=OnFailure.SKIP)


def _tenfold(x):
    return x * 10


class TestValueCodec:
    def test_round_trip(self):
        payload = encode_value({"rows": [1, 2], "rate": 0.25})
        assert decode_value(payload) == {"rows": [1, 2], "rate": 0.25}

    def test_tampered_payload_rejected(self):
        payload = encode_value([1, 2, 3])
        payload["sha256"] = "0" * 64
        with pytest.raises(ResilienceError, match="integrity"):
            decode_value(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ResilienceError, match="malformed"):
            decode_value({"sha256": "x"})


class TestJournalFile:
    def test_append_and_load_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"event": "item", "seq": 0, "index": 1, "status": "ok"})
        journal.append({"event": "complete"})
        journal.close()
        records = journal.load()
        assert [r["event"] for r in records] == ["item", "complete"]
        assert all(r["schema"] == JOURNAL_SCHEMA for r in records)

    def test_layout_under_store_root(self, tmp_path):
        path = CampaignJournal.path_for(tmp_path / "store", "abc123")
        assert path == tmp_path / "store" / "journals" / "abc123.jsonl"

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"event": "item", "seq": 0, "index": 0, "status": "ok"})
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b'{"torn": ')  # the hard-kill torn final append
            handle.write(b"\n")
            handle.write(
                json.dumps({"schema": "other-v9", "event": "item"}).encode()
                + b"\n"
            )
        rec = TraceRecorder()
        with using_recorder(rec):
            records = journal.load()
        assert len(records) == 1
        assert rec.metrics.counters["journal.corrupt_line"] == 2

    def test_discard_removes_the_file(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"event": "item"})
        journal.discard()
        assert not journal.path.exists()


class TestCampaignAttach:
    def test_fresh_campaign_discards_stale_journal(self, tmp_path):
        stale = Campaign(policy=SKIP)
        stale.attach_journal(tmp_path, "key-1")
        with using_campaign(stale):
            resilient_map(_tenfold, ITEMS, jobs=1)
        stale.finish(complete=False)
        assert CampaignJournal.path_for(tmp_path, "key-1").exists()

        fresh = Campaign()  # resume=False: never reuse silently
        fresh.attach_journal(tmp_path, "key-1")
        assert not fresh._cached
        with using_campaign(fresh):
            outcome = resilient_map(_tenfold, ITEMS, jobs=1)
        assert all(not o.cached for o in outcome.outcomes)

    def test_damaged_payload_entry_recomputes(self, tmp_path):
        first = Campaign(policy=SKIP)
        first.attach_journal(tmp_path, "key-2")
        with using_campaign(first):
            resilient_map(_tenfold, ITEMS, jobs=1)
        first.finish(complete=False)
        # Corrupt item 3's payload digest in place.
        path = CampaignJournal.path_for(tmp_path, "key-2")
        lines = path.read_bytes().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("index") == 3:
                record["payload"]["sha256"] = "0" * 64
            doctored.append(json.dumps(record).encode())
        path.write_bytes(b"\n".join(doctored) + b"\n")

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "key-2")
        with using_campaign(resumed):
            outcome = resilient_map(_tenfold, ITEMS, jobs=1)
        assert outcome.results == [x * 10 for x in ITEMS]
        assert [o.cached for o in outcome.outcomes] == [
            True, True, True, False, True,
        ]


class TestResume:
    def test_interrupted_campaign_resumes_byte_identically(self, tmp_path):
        reference = parallel_map(_tenfold, ITEMS, jobs=1)

        first = Campaign(policy=SKIP)
        first.attach_journal(tmp_path, "campaign-key")
        with using_campaign(first), using_plan(parse_spec("crash:items=2")):
            partial = resilient_map(_tenfold, ITEMS, jobs=2)
        first.finish(complete=False)
        assert partial.degraded and partial.completed == len(ITEMS) - 1
        assert first.summary() == (
            "campaign: 4 of 5 items completed; skipped: item[2]"
        )

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "campaign-key")
        rec = TraceRecorder()
        with using_recorder(rec), using_campaign(resumed):
            outcome = resilient_map(_tenfold, ITEMS, jobs=2)
        assert outcome.results == reference
        assert resumed.reused_items == len(ITEMS) - 1
        assert rec.metrics.counters["journal.hit"] == len(ITEMS) - 1
        # Only the crashed item was recomputed.
        assert [o.cached for o in outcome.outcomes] == [
            True, True, False, True, True,
        ]
        assert "4 reused from journal" in resumed.summary()

    def test_sequence_numbers_separate_fanouts(self, tmp_path):
        first = Campaign(policy=SKIP)
        first.attach_journal(tmp_path, "two-maps")
        with using_campaign(first):
            resilient_map(_tenfold, [1, 2], jobs=1)
            resilient_map(_tenfold, [7, 8], jobs=1)
        first.finish(complete=False)

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "two-maps")
        with using_campaign(resumed):
            a = resilient_map(_tenfold, [1, 2], jobs=1)
            b = resilient_map(_tenfold, [7, 8], jobs=1)
        assert a.results == [10, 20]
        assert b.results == [70, 80]
        assert resumed.reused_items == 4


# -- through the experiment registry -----------------------------------


@dataclasses.dataclass
class _ToyResult:
    values: List[int]

    def to_payload(self) -> dict:
        return {"values": list(self.values)}

    @classmethod
    def from_payload(cls, payload: dict) -> "_ToyResult":
        return cls(values=list(payload["values"]))


def _toy_runner(jobs=None):
    return _ToyResult(values=map_items(_tenfold, ITEMS, jobs=jobs))


def _toy_renderer(result: _ToyResult) -> str:
    return " ".join(str(v) for v in result.values)


def _toy_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="toy", runner=_toy_runner, result_type=_ToyResult,
        paper_ref="test-only", supports_jobs=True, renderer=_toy_renderer,
    )


class TestExecuteWithCampaign:
    def test_degraded_result_is_never_cached(self, tmp_path):
        previous = configure_cache(tmp_path / "store")
        try:
            spec = _toy_spec()
            campaign = Campaign(policy=SKIP)
            with using_campaign(campaign), using_plan(
                parse_spec("crash:items=1")
            ):
                degraded = execute(spec, {"jobs": 1})
            assert degraded.values == [0, 20, 30, 40]
            assert campaign.degraded
            from repro.experiments.common import get_store

            assert not get_store().info().artifacts.get("result")
        finally:
            set_store(previous)

    def test_resume_completes_and_caches(self, tmp_path):
        previous = configure_cache(tmp_path / "store")
        try:
            spec = _toy_spec()
            first = Campaign(policy=SKIP)
            with using_campaign(first), using_plan(
                parse_spec("crash:items=1")
            ):
                execute(spec, {"jobs": 1})

            resumed = Campaign(resume=True)
            with using_campaign(resumed):
                result = execute(spec, {"jobs": 1})
            assert result.values == [x * 10 for x in ITEMS]
            assert resumed.reused_items == len(ITEMS) - 1
            assert not resumed.degraded

            # The completed result is cached: a poisoned runner must
            # never execute on the third run.
            def _boom(**kwargs):
                raise AssertionError("must hit the result cache")

            poisoned = dataclasses.replace(spec, runner=_boom)
            third = Campaign()
            with using_campaign(third):
                cached = execute(poisoned, {"jobs": 1})
            assert cached.values == result.values
        finally:
            set_store(previous)

    def test_jobs_value_does_not_change_campaign_identity(self, tmp_path):
        previous = configure_cache(tmp_path / "store")
        try:
            spec = _toy_spec()
            first = Campaign(policy=SKIP)
            with using_campaign(first), using_plan(
                parse_spec("crash:items=1")
            ):
                execute(spec, {"jobs": 2})
            # Resume with a different jobs value: same campaign key
            # (jobs is excluded from the result key), same journal.
            resumed = Campaign(resume=True)
            with using_campaign(resumed):
                result = execute(spec, {"jobs": 1})
            assert result.values == [x * 10 for x in ITEMS]
            assert resumed.reused_items == len(ITEMS) - 1
        finally:
            set_store(previous)


# -- through the CLI ----------------------------------------------------


class TestCliCampaign:
    """The user-facing acceptance path: exit codes, stderr, --resume."""

    def test_degraded_run_then_resume_is_byte_identical(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        benchmarks = ["620.omnetpp_s", "557.xz_r"]
        ref_args = ["fig10", "--benchmarks", *benchmarks, "--jobs", "2",
                    "--cache-dir", str(tmp_path / "clean-store")]
        assert main(ref_args) == 0
        reference = capsys.readouterr().out

        args = ["fig10", "--benchmarks", *benchmarks, "--jobs", "2",
                "--cache-dir", str(tmp_path / "store")]
        code = main(args + ["--inject-faults", "crash:items=1",
                            "--on-failure", "skip"])
        captured = capsys.readouterr()
        assert code == 3
        assert "1 of 2 items completed" in captured.err
        assert "557.xz_r" in captured.err

        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert captured.out == reference
        assert "resumed: 1 journaled item(s) reused" in captured.err

    def test_resume_requires_the_store(self, capsys):
        from repro.cli import main

        code = main(["fig10", "--benchmarks", "620.omnetpp_s",
                     "--resume", "--no-cache"])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        from repro.cli import main

        code = main(["fig10", "--benchmarks", "620.omnetpp_s",
                     "--inject-faults", "meteor"])
        assert code == 2
        assert "resilience options" in capsys.readouterr().err

    def test_cache_doctor_flow(self, tmp_path, capsys):
        from repro.cli import main
        from repro.parallel import ArtifactStore

        store_dir = str(tmp_path / "store")
        store = ArtifactStore(store_dir, version="v")
        bad = store.put_json("metrics", {"k": 1}, {"v": 1})
        bad.write_bytes(b"garbage")
        assert main(["cache", "doctor", "--cache-dir", store_dir]) == 1
        assert "newly quarantined" in capsys.readouterr().out
        assert main(
            ["cache", "doctor", "--cache-dir", store_dir, "--prune"]
        ) == 0
        assert "pruned" in capsys.readouterr().out
        assert main(["cache", "doctor", "--cache-dir", store_dir]) == 0


class TestReplayEdgeCases:
    """The journal states a hard kill (or stray edit) can leave behind."""

    def _journaled_run(self, tmp_path, key: str) -> CampaignJournal:
        campaign = Campaign(policy=SKIP)
        campaign.attach_journal(tmp_path, key)
        with using_campaign(campaign):
            resilient_map(_tenfold, ITEMS, jobs=1)
        campaign.finish(complete=False)
        return CampaignJournal(CampaignJournal.path_for(tmp_path, key))

    def test_truncated_final_line_recomputes_only_that_item(self, tmp_path):
        journal = self._journaled_run(tmp_path, "trunc")
        raw = journal.path.read_bytes()
        # Tear the last append mid-record, as SIGKILL during write would.
        journal.path.write_bytes(raw[: raw.rfind(b'"status"')])

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "trunc")
        with using_campaign(resumed):
            outcome = resilient_map(_tenfold, ITEMS, jobs=1)
        assert outcome.results == [x * 10 for x in ITEMS]
        assert [o.cached for o in outcome.outcomes] == [
            True, True, True, True, False,
        ]
        assert resumed.reused_items == len(ITEMS) - 1

    def test_duplicate_item_records_last_write_wins(self, tmp_path):
        journal = self._journaled_run(tmp_path, "dup")
        # Re-append item 2 with a different (detectably newer) value, as
        # an interrupted retry that ran the item twice would.
        journal.append(
            {
                "event": "item", "seq": 0, "index": 2, "status": "ok",
                "label": "2", "attempts": 1, "kind": None, "error": None,
                "payload": encode_value(999),
            }
        )
        journal.close()

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "dup")
        with using_campaign(resumed):
            outcome = resilient_map(_tenfold, ITEMS, jobs=1)
        assert outcome.results == [0, 10, 999, 30, 40]
        assert all(o.cached for o in outcome.outcomes)

    def test_item_outcome_payload_round_trip(self, tmp_path):
        """to_payload -> journal -> cached_outcome preserves the item."""
        from repro.resilience.policy import ItemOutcome

        original = ItemOutcome(
            index=3, label="item-3", status="ok", attempts=2,
            value={"nested": [1, 2.5, "x"]},
        )
        campaign = Campaign()
        campaign.attach_journal(tmp_path, "rt")
        campaign.journal_item(0, original)
        campaign.finish(complete=False)

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "rt")
        replayed = resumed.cached_outcome(0, 3, "item-3")
        assert replayed is not None
        assert replayed.value == original.value
        assert replayed.cached is True

    def test_future_schema_lines_are_ignored_not_trusted(self, tmp_path):
        """Version skew: records from any other journal schema replay as
        absent (recompute), never as misparsed values."""
        journal = self._journaled_run(tmp_path, "ver")
        lines = journal.path.read_bytes().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("index") == 1:
                record["schema"] = "repro-journal-v999"
            doctored.append(json.dumps(record).encode())
        journal.path.write_bytes(b"\n".join(doctored) + b"\n")

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "ver")
        with using_campaign(resumed):
            outcome = resilient_map(_tenfold, ITEMS, jobs=1)
        assert outcome.results == [x * 10 for x in ITEMS]
        assert [o.cached for o in outcome.outcomes] == [
            True, False, True, True, True,
        ]

    def test_unknown_record_fields_are_tolerated(self, tmp_path):
        journal = self._journaled_run(tmp_path, "fwd")
        lines = journal.path.read_bytes().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            record["future_field"] = {"anything": True}
            doctored.append(json.dumps(record).encode())
        journal.path.write_bytes(b"\n".join(doctored) + b"\n")

        resumed = Campaign(resume=True)
        resumed.attach_journal(tmp_path, "fwd")
        with using_campaign(resumed):
            outcome = resilient_map(_tenfold, ITEMS, jobs=1)
        assert all(o.cached for o in outcome.outcomes)


class TestJournalLock:
    """One journal, one writer: the flock on <journal>.lock."""

    def test_second_acquirer_gets_structured_error(self, tmp_path):
        from repro.errors import JournalLockedError

        first = CampaignJournal(tmp_path / "j.jsonl")
        first.acquire()
        second = CampaignJournal(tmp_path / "j.jsonl")
        with pytest.raises(JournalLockedError) as excinfo:
            second.acquire()
        assert str(tmp_path / "j.jsonl") == excinfo.value.path
        first.close()

    def test_lock_released_on_close(self, tmp_path):
        first = CampaignJournal(tmp_path / "j.jsonl")
        first.append({"event": "item"})
        first.close()
        second = CampaignJournal(tmp_path / "j.jsonl")
        second.acquire()  # must not raise
        second.close()

    def test_acquire_is_idempotent_per_instance(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.acquire()
        journal.acquire()
        journal.close()

    def test_discard_keeps_the_lock(self, tmp_path):
        holder = CampaignJournal(tmp_path / "j.jsonl")
        holder.append({"event": "item"})
        holder.discard()
        from repro.errors import JournalLockedError

        rival = CampaignJournal(tmp_path / "j.jsonl")
        with pytest.raises(JournalLockedError):
            rival.acquire()
        holder.close()

    def test_campaign_attach_conflict(self, tmp_path):
        from repro.errors import JournalLockedError

        first = Campaign(policy=SKIP)
        first.attach_journal(tmp_path, "same-key")
        second = Campaign(resume=True)
        with pytest.raises(JournalLockedError):
            second.attach_journal(tmp_path, "same-key")
        first.finish(complete=False)
        # After the holder seals its campaign, attaching succeeds.
        third = Campaign(resume=True)
        third.attach_journal(tmp_path, "same-key")
        third.finish(complete=False)

    def test_lock_dies_with_the_process(self, tmp_path):
        """Kernel-released lock: a SIGKILL'd holder does not wedge the
        journal for the resuming process."""
        import os
        import signal
        import subprocess
        import sys
        import time

        src = os.path.join(os.path.dirname(__file__), "..", "src")
        code = (
            "import sys, time\n"
            "from repro.resilience.journal import CampaignJournal\n"
            f"j = CampaignJournal({str(tmp_path / 'j.jsonl')!r})\n"
            "j.acquire()\n"
            "print('locked', flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            env=env, stdout=subprocess.PIPE,
        )
        try:
            assert proc.stdout.readline().strip() == b"locked"
            mine = CampaignJournal(tmp_path / "j.jsonl")
            from repro.errors import JournalLockedError

            with pytest.raises(JournalLockedError):
                mine.acquire()
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            deadline = time.monotonic() + 10
            while True:
                try:
                    mine.acquire()
                    break
                except JournalLockedError:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            mine.close()
        finally:
            if proc.poll() is None:
                proc.kill()
