"""Smoke-run every example script end-to-end.

Each example asserts its own headline property internally; these tests
just execute them in-process (so pipeline caches are shared) and confirm
they complete.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
@pytest.mark.parametrize(
    "name",
    ["quickstart", "custom_workload", "memory_hierarchy_pitfall",
     "design_space_sweep", "suite_characterization"],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100
