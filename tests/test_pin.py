"""Instrumentation engine and pintools."""

import numpy as np
import pytest

from repro.config import ALLCACHE_SIM
from repro.errors import SimulationError
from repro.isa.trace import SliceTrace
from repro.pin import (
    AllCache,
    BBVProfiler,
    BranchProfiler,
    Engine,
    InsCount,
    LdStMix,
)
from repro.pin.pintool import Pintool


def trace(index=0, instr=100, classes=(50, 30, 15, 5), lines=(1, 2, 3),
          branches=10, entropy=0.2):
    classes = np.asarray(classes, dtype=np.int64)
    lines = np.asarray(lines, dtype=np.int64)
    return SliceTrace(
        index=index,
        phase_id=0,
        instruction_count=instr,
        block_counts=np.array([3, 1], dtype=np.int64),
        class_counts=classes,
        mem_lines=lines,
        mem_is_write=np.zeros(lines.size, dtype=bool),
        ifetch_lines=np.array([9], dtype=np.int64),
        branch_count=branches,
        branch_entropy=entropy,
    )


class RecordingTool(Pintool):
    """Test helper: records every event it sees."""

    def __init__(self, stateful=False):
        super().__init__()
        self.stateful = stateful
        self.events = []

    def begin(self):
        self.events.append("begin")

    def process_slice(self, t):
        self.events.append(("slice", t.index, self.warmup))

    def end(self):
        self.events.append("end")

    def reset(self):
        self.events = []


class TestEngine:
    def test_lifecycle_order(self):
        tool = RecordingTool()
        Engine([tool]).run([trace(0), trace(1)])
        assert tool.events == [
            "begin", ("slice", 0, False), ("slice", 1, False), "end",
        ]

    def test_warmup_only_reaches_stateful_tools(self):
        plain = RecordingTool(stateful=False)
        stateful = RecordingTool(stateful=True)
        Engine([plain, stateful]).run([trace(5)], warmup=[trace(3), trace(4)])
        assert ("slice", 3, True) not in plain.events
        assert ("slice", 3, True) in stateful.events
        assert ("slice", 4, True) in stateful.events
        # Measured region observed by both, warmup flag cleared.
        assert ("slice", 5, False) in plain.events
        assert ("slice", 5, False) in stateful.events

    def test_rejects_no_tools(self):
        with pytest.raises(SimulationError):
            Engine([])


class TestInsCount:
    def test_counts(self):
        tool = InsCount()
        Engine([tool]).run([trace(instr=100), trace(instr=250)])
        assert tool.instructions == 350
        assert tool.slices == 2

    def test_reset(self):
        tool = InsCount()
        tool.process_slice(trace())
        tool.reset()
        assert tool.instructions == 0


class TestLdStMix:
    def test_fractions(self):
        tool = LdStMix()
        Engine([tool]).run([trace(classes=(50, 30, 15, 5))])
        assert tool.fractions()[0] == pytest.approx(0.5)
        assert tool.total_instructions == 100

    def test_accumulates(self):
        tool = LdStMix()
        tool.process_slice(trace(classes=(10, 0, 0, 0)))
        tool.process_slice(trace(classes=(0, 10, 0, 0)))
        assert tool.fractions()[0] == pytest.approx(0.5)
        assert tool.fractions()[1] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            LdStMix().fractions()

    def test_reset(self):
        tool = LdStMix()
        tool.process_slice(trace())
        tool.reset()
        assert tool.class_counts.sum() == 0


class TestBranchProfiler:
    def test_entropy_weighted(self):
        tool = BranchProfiler()
        tool.process_slice(trace(branches=10, entropy=0.1))
        tool.process_slice(trace(branches=30, entropy=0.5))
        assert tool.mean_entropy == pytest.approx((1 + 15) / 40)
        assert tool.branch_fraction == pytest.approx(40 / 200)

    def test_zero_branches(self):
        tool = BranchProfiler()
        tool.process_slice(trace(branches=0))
        assert tool.mean_entropy == 0.0

    def test_no_instructions_rejected(self):
        with pytest.raises(SimulationError):
            BranchProfiler().branch_fraction


class TestBBVProfiler:
    def test_matrix_shape_and_normalization(self):
        tool = BBVProfiler()
        Engine([tool]).run([trace(0), trace(1)])
        matrix = tool.matrix()
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_slice_indices(self):
        tool = BBVProfiler()
        Engine([tool]).run([trace(4), trace(9)])
        assert tool.slice_indices().tolist() == [4, 9]

    def test_size_weighting(self):
        unweighted = BBVProfiler()
        weighted = BBVProfiler(block_sizes=np.array([1.0, 100.0]))
        t = trace()
        unweighted.process_slice(t)
        weighted.process_slice(t)
        assert weighted.matrix()[0, 1] > unweighted.matrix()[0, 1]

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            BBVProfiler().matrix()


class TestAllCache:
    def test_uses_scaled_table1_by_default(self):
        tool = AllCache()
        assert tool.config is ALLCACHE_SIM

    def test_stats_all_levels(self):
        tool = AllCache()
        Engine([tool]).run([trace()])
        stats = tool.stats()
        assert set(stats) == {"L1I", "L1D", "L2", "L3"}
        assert stats["L1D"].accesses == 3

    def test_warmup_does_not_record(self):
        tool = AllCache()
        Engine([tool]).run([trace(1)], warmup=[trace(0)])
        assert tool.stats()["L1D"].accesses == 3

    def test_warmup_warms(self):
        cold = AllCache()
        Engine([cold]).run([trace()])
        warm = AllCache()
        Engine([warm]).run([trace()], warmup=[trace()])
        assert warm.stats()["L1D"].misses < cold.stats()["L1D"].misses

    def test_miss_rate_helper(self):
        tool = AllCache()
        Engine([tool]).run([trace()])
        assert tool.miss_rate("L1D") == pytest.approx(
            tool.stats()["L1D"].miss_rate
        )

    def test_reset(self):
        tool = AllCache()
        tool.process_slice(trace())
        tool.reset()
        assert tool.stats()["L1D"].accesses == 0
