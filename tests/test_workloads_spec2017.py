"""The SPEC CPU2017 registry and its calibration invariants."""

import numpy as np
import pytest

from repro.errors import UnknownBenchmarkError, WorkloadError
from repro.workloads.spec2017 import (
    MEMORY_ARCHETYPES,
    SPEC_CPU2017,
    TARGET_SUITE_INSTRUCTIONS,
    TARGET_SUITE_MIX,
    benchmark_names,
    build_program,
    get_descriptor,
)

from conftest import QUICK


class TestRegistry:
    def test_twenty_nine_benchmarks(self):
        # Table II of the paper lists 29 workloads (the rest of the suite
        # could not be checkpointed in time; Section III).
        assert len(SPEC_CPU2017) == 29

    def test_suite_split(self):
        assert len(benchmark_names(suite="INT")) == 19
        assert len(benchmark_names(suite="FP")) == 10

    def test_variant_split(self):
        assert len(benchmark_names(variant="speed")) == 10
        assert len(benchmark_names(variant="rate")) == 19

    def test_table2_spot_values(self):
        x = get_descriptor("623.xalancbmk_s")
        assert (x.num_phases, x.num_90pct) == (25, 19)
        b = get_descriptor("503.bwaves_r")
        assert (b.num_phases, b.num_90pct) == (26, 7)
        o = get_descriptor("620.omnetpp_s")
        assert (o.num_phases, o.num_90pct) == (3, 2)

    def test_table2_column_averages_match_paper(self):
        # The paper reports averages of 19.75 and 11.31.
        points = [d.num_phases for d in SPEC_CPU2017.values()]
        points90 = [d.num_90pct for d in SPEC_CPU2017.values()]
        assert np.mean(points) == pytest.approx(19.75, abs=0.011)
        assert np.mean(points90) == pytest.approx(11.31, abs=0.005)

    def test_suite_average_instructions(self):
        instr = [d.paper_instructions for d in SPEC_CPU2017.values()]
        assert np.mean(instr) == pytest.approx(TARGET_SUITE_INSTRUCTIONS)

    def test_suite_average_mix_matches_paper(self):
        mixes = np.array([d.base_mix for d in SPEC_CPU2017.values()])
        avg = mixes.mean(axis=0)
        assert np.abs(avg - np.asarray(TARGET_SUITE_MIX)).max() < 0.01

    def test_every_mix_normalized(self):
        for d in SPEC_CPU2017.values():
            assert sum(d.base_mix) == pytest.approx(1.0)
            assert min(d.base_mix) > 0

    def test_memory_classes_valid(self):
        for d in SPEC_CPU2017.values():
            assert d.memory_class in MEMORY_ARCHETYPES

    def test_archetypes_normalized(self):
        for fractions in MEMORY_ARCHETYPES.values():
            assert sum(fractions) == pytest.approx(1.0)
            assert len(fractions) == 5

    def test_short_name_lookup(self):
        assert get_descriptor("xalancbmk_s").spec_id == "623.xalancbmk_s"

    def test_unknown_benchmark(self):
        with pytest.raises(UnknownBenchmarkError):
            get_descriptor("999.nonexistent")

    def test_seeds_unique(self):
        seeds = [d.seed for d in SPEC_CPU2017.values()]
        assert len(set(seeds)) == len(seeds)


class TestBuildProgram:
    def test_builds_with_quick_config(self):
        program = build_program("557.xz_r", **QUICK)
        assert program.num_slices == QUICK["total_slices"]
        assert program.num_phases == 13
        assert program.slice_size == QUICK["slice_size"]

    def test_phase_weights_descend(self):
        program = build_program("505.mcf_r", **QUICK)
        weights = [p.weight for p in program.phases]
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_schedule_counts_realize_cut(self):
        from repro.workloads.phases import ninety_percentile_count

        descriptor = get_descriptor("505.mcf_r")
        program = build_program("505.mcf_r", **QUICK)
        counts = program.schedule.phase_counts()
        assert len(counts) == descriptor.num_phases
        assert ninety_percentile_count(counts.astype(float)) == \
            descriptor.num_90pct

    def test_deterministic_build(self):
        a = build_program("541.leela_r", **QUICK)
        b = build_program("541.leela_r", **QUICK)
        ta, tb = a.generate_slice(3), b.generate_slice(3)
        assert np.array_equal(ta.mem_lines, tb.mem_lines)

    def test_too_few_slices_rejected(self):
        with pytest.raises(WorkloadError):
            build_program("502.gcc_r", slice_size=3000, total_slices=40)

    def test_tail_phases_more_memory_intensive(self):
        program = build_program("623.xalancbmk_s", **QUICK)
        head = program.phases[0].mem_fractions
        tail = program.phases[-1].mem_fractions
        assert (1 - tail[0]) > (1 - head[0])
