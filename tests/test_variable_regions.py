"""Variable-length simulation regions."""

import numpy as np
import pytest

from repro.errors import SimPointError
from repro.simpoint.simpoints import SimPointResult, SimulationPoint
from repro.simpoint.variable import (
    VariableRegion,
    label_runs,
    region_statistics,
    variable_length_regions,
)


def result_from_labels(labels, points=None):
    labels = np.asarray(labels)
    clusters = sorted(set(labels.tolist()))
    if points is None:
        points = []
        for cluster in clusters:
            members = np.flatnonzero(labels == cluster)
            points.append(
                SimulationPoint(
                    slice_index=int(members[len(members) // 2]),
                    cluster=cluster,
                    weight=members.size / labels.size,
                    cluster_size=int(members.size),
                )
            )
    return SimPointResult(
        points=points,
        labels=labels,
        slice_indices=np.arange(labels.size),
        k=len(clusters),
        max_k=35,
    )


class TestLabelRuns:
    def test_single_run(self):
        assert label_runs([1, 1, 1]) == [(0, 3, 1)]

    def test_alternating(self):
        assert label_runs([0, 1, 0]) == [(0, 1, 0), (1, 1, 1), (2, 1, 0)]

    def test_runs_partition_sequence(self):
        labels = [0, 0, 1, 1, 1, 0, 2, 2]
        runs = label_runs(labels)
        assert sum(r[1] for r in runs) == len(labels)
        rebuilt = []
        for start, length, label in runs:
            rebuilt.extend([label] * length)
        assert rebuilt == labels

    def test_rejects_empty(self):
        with pytest.raises(SimPointError):
            label_runs([])


class TestVariableRegions:
    def test_one_region_per_cluster(self):
        labels = [0] * 10 + [1] * 6 + [0] * 4 + [2] * 5
        result = result_from_labels(labels)
        regions = variable_length_regions(result)
        assert len(regions) == 3
        assert {r.cluster for r in regions} == {0, 1, 2}

    def test_regions_cover_their_cluster_labels(self):
        labels = [0] * 8 + [1] * 8 + [0] * 8
        result = result_from_labels(labels)
        for region in variable_length_regions(result):
            span = result.labels[region.start:region.end]
            assert (span == region.cluster).all()

    def test_picks_long_runs(self):
        labels = [0] * 2 + [1] * 10 + [0] * 12 + [1] * 3
        result = result_from_labels(labels)
        regions = {r.cluster: r for r in variable_length_regions(result)}
        assert regions[0].length == 12
        assert regions[1].length == 10

    def test_weights_preserved(self):
        labels = [0] * 15 + [1] * 5
        result = result_from_labels(labels)
        regions = {r.cluster: r for r in variable_length_regions(result)}
        assert regions[0].weight == pytest.approx(0.75)
        assert regions[1].weight == pytest.approx(0.25)

    def test_length_cap(self):
        labels = [0] * 40 + [1] * 4
        result = result_from_labels(labels)
        regions = variable_length_regions(result, max_region_slices=10)
        assert all(r.length <= 10 for r in regions)

    def test_cap_keeps_cluster_purity(self):
        labels = [0] * 40 + [1] * 4
        result = result_from_labels(labels)
        for region in variable_length_regions(result, max_region_slices=8):
            span = result.labels[region.start:region.end]
            assert (span == region.cluster).all()

    def test_rejects_negative_cap(self):
        result = result_from_labels([0, 0, 1, 1])
        with pytest.raises(SimPointError):
            variable_length_regions(result, max_region_slices=-1)

    def test_on_real_pipeline(self, quick_pinpoints):
        regions = variable_length_regions(quick_pinpoints.simpoints)
        assert len(regions) == quick_pinpoints.simpoints.num_points
        stats = region_statistics(regions)
        # Variable regions batch many slices per checkpoint.
        assert stats["mean_length"] > 1.0
        assert stats["num_regions"] == quick_pinpoints.simpoints.num_points

    def test_statistics(self):
        regions = [
            VariableRegion(0, 5, 0, 0.5),
            VariableRegion(10, 15, 1, 0.5),
        ]
        stats = region_statistics(regions)
        assert stats["num_regions"] == 2
        assert stats["total_slices"] == 20
        assert stats["mean_length"] == pytest.approx(10.0)
        assert stats["max_length"] == 15

    def test_statistics_rejects_empty(self):
        with pytest.raises(SimPointError):
            region_statistics([])
