"""Reuse-distance analysis and statistical warm-miss estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheLevel
from repro.cache.reuse import (
    COLD,
    ReuseProfile,
    estimate_warm_miss_rate,
    stack_distances,
)
from repro.config import CacheConfig
from repro.errors import SimulationError


class TestStackDistances:
    def test_first_touches_are_cold(self):
        distances = stack_distances(np.array([1, 2, 3]))
        assert (distances == COLD).all()

    def test_immediate_reuse_distance_zero(self):
        distances = stack_distances(np.array([7, 7]))
        assert distances[1] == 0

    def test_classic_sequence(self):
        # a b c a : distance of the second 'a' is 2 (b and c in between).
        distances = stack_distances(np.array([1, 2, 3, 1]))
        assert distances[3] == 2

    def test_duplicates_between_do_not_double_count(self):
        # a b b a : only one distinct line between the two a's.
        distances = stack_distances(np.array([1, 2, 2, 1]))
        assert distances[3] == 1

    def test_empty(self):
        assert stack_distances(np.array([], dtype=np.int64)).size == 0

    @settings(max_examples=40, deadline=None)
    @given(lines=st.lists(st.integers(0, 30), min_size=1, max_size=300),
           size_pow=st.integers(0, 5))
    def test_property_matches_fully_associative_lru(self, lines, size_pow):
        """Mattson: miss <=> stack distance >= capacity (or cold)."""
        capacity = 2 ** size_pow
        arr = np.array(lines, dtype=np.int64)
        distances = stack_distances(arr)
        predicted = (distances == COLD) | (distances >= capacity)
        level = CacheLevel(
            CacheConfig("FA", size_bytes=capacity * 32, line_size=32,
                        associativity=capacity)
        )
        simulated = level.access_many(arr)
        assert np.array_equal(predicted, simulated)


class TestReuseProfile:
    def test_histogram_totals(self):
        profile = ReuseProfile.from_lines(np.array([1, 2, 1, 2, 1]))
        assert profile.total == 5
        assert profile.histogram[COLD] == 2
        assert profile.histogram[1] == 3

    def test_cold_fraction(self):
        profile = ReuseProfile.from_lines(np.array([1, 2, 3, 1]))
        assert profile.cold_fraction == pytest.approx(0.75)

    def test_miss_rate_monotone_in_size(self):
        rng = np.random.default_rng(5)
        profile = ReuseProfile.from_lines(rng.integers(0, 64, size=2000))
        curve = profile.miss_rate_curve([1, 4, 16, 64, 256])
        rates = [curve[s] for s in (1, 4, 16, 64, 256)]
        assert rates == sorted(rates, reverse=True)

    def test_huge_cache_only_cold_misses(self):
        profile = ReuseProfile.from_lines(np.array([1, 2, 1, 2]))
        assert profile.miss_rate(10 ** 6) == pytest.approx(0.5)
        assert profile.miss_rate(10 ** 6, count_cold=False) == 0.0

    def test_from_slices(self, small_program):
        profile = ReuseProfile.from_slices(small_program.iter_slices(0, 5))
        assert profile.total > 0
        assert 0.0 <= profile.cold_fraction <= 1.0

    def test_validation(self):
        profile = ReuseProfile.from_lines(np.array([1, 2]))
        with pytest.raises(SimulationError):
            profile.miss_rate(0)
        with pytest.raises(SimulationError):
            ReuseProfile.from_slices([])


class TestWarmEstimate:
    def test_warm_estimate_below_cold(self, small_program):
        whole = ReuseProfile.from_slices(small_program.iter_slices())
        region = ReuseProfile.from_slices(small_program.iter_slices(30, 1))
        lines = 4096
        cold_rate = region.miss_rate(lines, count_cold=True)
        warm_estimate = estimate_warm_miss_rate(region, whole, lines)
        assert warm_estimate < cold_rate

    def test_warm_estimate_tracks_true_warm_rate(self, small_program):
        """The estimate approximates a genuinely warmed replay."""
        whole = ReuseProfile.from_slices(small_program.iter_slices())
        region_slices = list(small_program.iter_slices(30, 2))
        region_lines = np.concatenate([t.mem_lines for t in region_slices])
        region = ReuseProfile.from_lines(region_lines)

        capacity = 8192
        estimate = estimate_warm_miss_rate(region, whole, capacity)

        # Ground truth: fully-associative cache warmed by the whole
        # prefix, then measured on the region.
        level = CacheLevel(
            CacheConfig("FA", size_bytes=capacity * 32, line_size=32,
                        associativity=capacity),
            recording=False,
        )
        for trace in small_program.iter_slices(0, 30):
            level.access_many(trace.mem_lines)
        level.recording = True
        level.access_many(region_lines)
        true_warm = level.stats.miss_rate
        assert abs(estimate - true_warm) < 0.15

    def test_rejects_empty_region(self):
        whole = ReuseProfile.from_lines(np.array([1, 2, 1]))
        empty = ReuseProfile(histogram={}, total=0)
        with pytest.raises(SimulationError):
            estimate_warm_miss_rate(empty, whole, 64)
