"""Parallel fan-out and the disk tier never change experiment output.

The contract under test: for every driver that takes ``jobs``, the
rendered table from a parallel run is byte-identical to the serial
run's, and a warm-from-disk run is byte-identical to a cold one.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import common
from repro.experiments.baselines import render_baselines, run_baselines
from repro.experiments.common import clear_pinpoints_cache, configure_cache
from repro.experiments.fig4 import render_fig4, run_fig4
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.fig6 import render_fig6, run_fig6
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.experiments.fig12 import render_fig12, run_fig12
from repro.experiments.future_suite import (
    render_future_suite,
    run_future_suite,
)
from repro.experiments.rate_scaling import (
    render_rate_scaling,
    run_rate_scaling,
)
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.turnaround import render_turnaround, run_turnaround

from conftest import QUICK

BENCHMARKS = ["620.omnetpp_s", "557.xz_r"]

#: (runner, renderer) for every driver exposing the ``jobs`` axis.
DRIVERS = [
    (run_table2, render_table2),
    (run_fig4, render_fig4),
    (run_fig5, render_fig5),
    (run_fig6, render_fig6),
    (run_fig7, render_fig7),
    (run_fig8, render_fig8),
    (run_fig9, render_fig9),
    (run_fig10, render_fig10),
    (run_fig12, render_fig12),
    (run_baselines, render_baselines),
    (run_rate_scaling, render_rate_scaling),
    (run_turnaround, render_turnaround),
    (run_future_suite, render_future_suite),
]


@pytest.mark.parametrize(
    "runner,renderer", DRIVERS, ids=[r[0].__name__ for r in DRIVERS]
)
def test_parallel_output_is_byte_identical(runner, renderer):
    clear_pinpoints_cache()
    serial = renderer(runner(BENCHMARKS, jobs=1, **QUICK))
    parallel = renderer(runner(BENCHMARKS, jobs=4, **QUICK))
    assert parallel == serial


def test_warm_disk_run_is_byte_identical(tmp_path):
    configure_cache(tmp_path / "store")
    clear_pinpoints_cache()
    cold = render_fig8(run_fig8(BENCHMARKS, jobs=1, **QUICK))
    assert common.get_store().info().total_artifacts > 0
    common._PINPOINTS_CACHE.clear()  # fresh process, warm disk
    common._WHOLE_CACHE.clear()
    common._POINTS_CACHE.clear()
    warm = render_fig8(run_fig8(BENCHMARKS, jobs=1, **QUICK))
    assert warm == cold


def test_parallel_cold_run_with_shared_store(tmp_path):
    configure_cache(tmp_path / "store")
    clear_pinpoints_cache()
    serial = render_fig7(run_fig7(BENCHMARKS, jobs=1, **QUICK))
    clear_pinpoints_cache()
    parallel = render_fig7(run_fig7(BENCHMARKS, jobs=2, **QUICK))
    assert parallel == serial


class TestCli:
    def test_jobs_flag_output_matches_serial(self, tmp_path, capsys):
        args = ["fig10", "--benchmarks", "620.omnetpp_s",
                "--cache-dir", str(tmp_path / "store")]
        assert main(args + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_no_cache_flag_disables_disk_tier(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["fig10", "--benchmarks", "620.omnetpp_s", "--jobs", "1",
                     "--cache-dir", str(store_dir), "--no-cache"]) == 0
        capsys.readouterr()
        assert not store_dir.exists()

    def test_cache_info_and_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["cache", "info", "--cache-dir", store_dir]) == 0
        assert "not created yet" in capsys.readouterr().out
        assert main(["fig10", "--benchmarks", "620.omnetpp_s", "--jobs", "1",
                     "--cache-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", store_dir]) == 0
        info = capsys.readouterr().out
        assert "metrics" in info and "pinpoints" in info
        assert main(["cache", "clear", "--cache-dir", store_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", store_dir]) == 0
        assert "artifacts: 0" in capsys.readouterr().out

    def test_cache_clear_refuses_foreign_directory(self, tmp_path, capsys):
        foreign = tmp_path / "not-a-store"
        foreign.mkdir()
        (foreign / "keep.txt").write_text("data")
        assert main(["cache", "clear", "--cache-dir", str(foreign)]) == 2
        assert "refusing" in capsys.readouterr().err
        assert (foreign / "keep.txt").exists()

    def test_default_store_honors_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-store"))
        assert main(["cache", "info"]) == 0
        assert str(tmp_path / "env-store") in capsys.readouterr().out
