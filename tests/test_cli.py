"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "623.xalancbmk_s" in out
        assert "503.bwaves_r" in out

    def test_experiment_with_subset(self, capsys):
        assert main(["fig6", "--benchmarks", "620.omnetpp_s"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "620.omnetpp_s" in out

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["fig6", "--benchmarks", "999.bogus"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_turnaround_with_subset(self, capsys):
        assert main(["turnaround", "--benchmarks", "620.omnetpp_s"]) == 0
        out = capsys.readouterr().out
        assert "detailed full" in out
        assert "FSA" in out

    def test_rate_with_subset(self, capsys):
        assert main(["rate", "--benchmarks", "620.omnetpp_s"]) == 0
        out = capsys.readouterr().out
        assert "SPECrate" in out
        assert "throughput" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
