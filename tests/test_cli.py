"""Command-line interface."""

import json

import pytest

import repro
from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "623.xalancbmk_s" in out
        assert "503.bwaves_r" in out

    def test_experiment_with_subset(self, capsys):
        assert main(["fig6", "--benchmarks", "620.omnetpp_s"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "620.omnetpp_s" in out

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["fig6", "--benchmarks", "999.bogus"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_turnaround_with_subset(self, capsys):
        assert main(["turnaround", "--benchmarks", "620.omnetpp_s"]) == 0
        out = capsys.readouterr().out
        assert "detailed full" in out
        assert "FSA" in out

    def test_rate_with_subset(self, capsys):
        assert main(["rate", "--benchmarks", "620.omnetpp_s"]) == 0
        out = capsys.readouterr().out
        assert "SPECrate" in out
        assert "throughput" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro-spec2017 {repro.__version__}"

    def test_version_matches_package_metadata(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


@pytest.mark.slow
class TestTraceCli:
    ARGS = ["trace", "fig10", "--benchmarks", "620.omnetpp_s", "557.xz_r",
            "--jobs", "2"]

    def test_trace_writes_all_three_exports(self, tmp_path, capsys):
        from repro.experiments.common import clear_pinpoints_cache

        clear_pinpoints_cache()  # cold memory tier: workers run pipelines
        trace_path = tmp_path / "run.trace.json"
        events_path = tmp_path / "run.events.jsonl"
        summary_path = tmp_path / "run.summary.json"
        assert main(self.ARGS + [
            "--trace-out", str(trace_path),
            "--events-out", str(events_path),
            "--summary-out", str(summary_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out

        trace = json.loads(trace_path.read_text())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        # Spans from the pipeline, store, and cache layers, per-worker.
        for prefix in ("pinpoints.", "store.", "cache."):
            assert any(n.startswith(prefix) for n in names), prefix
        assert any(e["tid"] > 0 for e in complete)
        threads = {e["args"]["name"] for e in trace["traceEvents"]
                   if e["ph"] == "M"}
        assert {"main", "worker-1", "worker-2"} <= threads

        first = json.loads(events_path.read_text().splitlines()[0])
        assert first["type"] == "span"
        summary = json.loads(summary_path.read_text())
        assert summary["schema"] == "repro-trace-summary-v1"
        assert summary["counters"]["parallel.tasks"] == 2

    #: Single-benchmark serial variant for the cheaper checks.
    QUICK_ARGS = ["trace", "fig10", "--benchmarks", "620.omnetpp_s",
                  "--jobs", "1"]

    def test_trace_view_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(self.QUICK_ARGS + ["--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "view", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        # cache.replay always runs (RunMetrics are store-keyed, but this
        # process's memory tier starts cold for metrics of this run).
        assert "cache.replay" in out
        assert "measure.benchmark" in out

    def test_trace_view_missing_file(self, tmp_path, capsys):
        assert main(["trace", "view", str(tmp_path / "nope.json")]) == 2
        assert "cannot read trace file" in capsys.readouterr().err

    def test_trace_rejects_unknown_benchmark(self, capsys):
        assert main(["trace", "fig10", "--benchmarks", "999.bogus"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_trace_leaves_no_recorder_installed(self, tmp_path):
        from repro.telemetry import get_recorder

        assert main(self.QUICK_ARGS + ["--trace-out",
                                       str(tmp_path / "t.json")]) == 0
        assert get_recorder() is None
