"""ASCII rendering helpers."""

import pytest

from repro.experiments.report import format_bar, format_table, pct


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # All lines share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_non_string_cells(self):
        text = format_table(["x", "y"], [(1.5, None)])
        assert "1.5" in text and "None" in text

    def test_wide_cell_grows_column(self):
        text = format_table(["x"], [("wide-cell-content",)])
        header = text.splitlines()[0]
        assert len(header) >= len("wide-cell-content")

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestFormatBar:
    def test_full_bar(self):
        assert format_bar(10, 10, width=5) == "#####"

    def test_half_bar(self):
        assert format_bar(5, 10, width=10) == "#####"

    def test_clamped_at_max(self):
        assert format_bar(50, 10, width=4) == "####"

    def test_zero_max(self):
        assert format_bar(1, 0) == ""

    def test_zero_value(self):
        assert format_bar(0, 10, width=8) == ""


class TestPct:
    def test_default_digits(self):
        assert pct(0.1234) == "12.34%"

    def test_custom_digits(self):
        assert pct(0.5, digits=0) == "50%"

    def test_rounding(self):
        assert pct(0.12345, digits=1) == "12.3%"
