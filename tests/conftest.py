"""Shared fixtures: small, fast workload/pipeline instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pinpoints.pipeline import run_pinpoints
from repro.workloads.phases import PhaseSpec
from repro.workloads.program import SyntheticProgram
from repro.workloads.schedule import PhaseSchedule
from repro.workloads.spec2017 import build_program

#: Tiny-but-representative pipeline configuration used by most tests.
QUICK = dict(slice_size=3000, total_slices=120)


@pytest.fixture(autouse=True)
def _hermetic_store(tmp_path, monkeypatch):
    """Keep the disk tier away from the user's real cache directory.

    Any code path that resolves the default store location (the CLI, the
    bench harness) lands in a per-test temporary directory, and a store
    configured by one test never leaks into the next.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-store"))
    from repro.experiments.common import get_store, set_store
    from repro.resilience import faults
    from repro.resilience.context import set_campaign
    from repro.telemetry.recorder import set_recorder

    previous = get_store()
    previous_recorder = set_recorder(None)
    previous_campaign = set_campaign(None)
    # Re-arm the fault-plan slot: each test sees fresh write ordinals
    # (deterministic trigger positions) and picks up REPRO_INJECT_FAULTS
    # lazily, so the CI faults job injects into every test independently.
    faults.reset_plan()
    yield
    set_store(previous)
    set_recorder(previous_recorder)
    set_campaign(previous_campaign)
    faults.reset_plan()


@pytest.fixture()
def inject_faults():
    """Install a deterministic fault plan for this test; auto-restored.

    Usage::

        def test_recovery(inject_faults):
            inject_faults("crash:items=2")
            ...
    """
    from repro.resilience import faults

    def _install(spec: str):
        plan = faults.parse_spec(spec)
        faults.set_plan(plan)
        return plan

    yield _install
    faults.reset_plan()


def make_phase(phase_id: int, weight: float = 0.5, **overrides) -> PhaseSpec:
    """A valid PhaseSpec with sensible small defaults."""
    params = dict(
        phase_id=phase_id,
        weight=weight,
        mix=(0.5, 0.35, 0.13, 0.02),
        mem_fractions=(0.92, 0.05, 0.015, 0.008, 0.007),
        ws_lines=(8, 40, 1000, 2500),
        branch_fraction=0.15,
        branch_entropy=0.2,
        num_blocks=10,
        code_lines=32,
    )
    params.update(overrides)
    return PhaseSpec(**params)


@pytest.fixture(scope="session")
def small_program() -> SyntheticProgram:
    """A 3-phase custom program, 60 slices of 2 000 instructions."""
    phases = [
        make_phase(0, weight=0.5, mix=(0.6, 0.3, 0.08, 0.02)),
        make_phase(1, weight=0.3, mix=(0.4, 0.4, 0.17, 0.03)),
        make_phase(2, weight=0.2, mix=(0.5, 0.3, 0.15, 0.05)),
    ]
    schedule = PhaseSchedule.from_counts([30, 18, 12], seed=7, mean_run_length=6)
    return SyntheticProgram(
        "test.prog", phases, schedule, slice_size=2000, seed=42
    )


@pytest.fixture(scope="session")
def xz_program():
    """A quick-config build of a real registry benchmark."""
    return build_program("557.xz_r", **QUICK)


@pytest.fixture(scope="session")
def quick_pinpoints():
    """End-to-end PinPoints output for one benchmark, quick config."""
    return run_pinpoints("620.omnetpp_s", **QUICK)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for ad-hoc test data."""
    return np.random.default_rng(1234)
