"""Telemetry subsystem: spans, metrics, worker merge, exporters, no-op mode.

The two load-bearing contracts:

* **Determinism** — with a :class:`FakeClock`, every exporter's output is
  byte-stable, and the worker→parent merge aggregates to the same
  metrics for any job count (partition independence).
* **Isolation** — telemetry never perturbs results: disabled, the
  instrumented paths are shared no-ops and the pool ships raw results;
  enabled, result dicts gain no keys and rendered experiment output is
  byte-identical to an untraced run.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.errors import ConfigError
from repro.experiments.common import clear_pinpoints_cache, measure_benchmark
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.parallel import parallel_map
from repro.telemetry import (
    SUMMARY_SCHEMA,
    FakeClock,
    HistogramSummary,
    MetricsRegistry,
    TraceRecorder,
    chrome_trace,
    jsonl_lines,
    metric_key,
    render_summary,
    summarize,
    summarize_payload,
    using_recorder,
)
from repro.telemetry.recorder import MAIN_TID, get_recorder

from conftest import QUICK


def _traced_square(n: int) -> int:
    """Pool worker that records spans and every metric family."""
    with telemetry.span("task.unit", n=n):
        telemetry.count("task.calls")
        telemetry.count("task.value", n)
        telemetry.observe("task.size", n)
    return n * n


class TestClock:
    def test_fake_clock_is_deterministic(self):
        clock = FakeClock(start_ns=10, step_ns=5)
        assert [clock(), clock(), clock()] == [10, 15, 20]
        assert [FakeClock()(), FakeClock()()] == [0, 0]

    def test_monotonic_ns_advances(self):
        first = telemetry.monotonic_ns()
        assert telemetry.monotonic_ns() >= first


class TestMetricKey:
    def test_tags_render_sorted(self):
        assert metric_key("hits", {"kind": "json", "b": 1}) == "hits{b=1,kind=json}"
        assert metric_key("hits", {"b": 1, "kind": "json"}) == "hits{b=1,kind=json}"

    def test_no_tags_is_bare_name(self):
        assert metric_key("hits") == "hits"
        assert metric_key("hits", {}) == "hits"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            metric_key("")


class TestMetricsRegistry:
    def test_families_accumulate(self):
        reg = MetricsRegistry()
        reg.count("hits", 2, kind="json")
        reg.count("hits", 3, kind="json")
        reg.gauge("workers", 1)
        reg.gauge("workers", 4)
        reg.observe("points", 3.0)
        reg.observe("points", 25.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits{kind=json}": 5}
        assert snap["gauges"] == {"workers": 4.0}
        assert snap["histograms"] == {
            "points": {"count": 2, "total": 28.0, "min": 3.0, "max": 25.0}
        }

    def test_merge_is_partition_independent(self):
        ops = [("a", 2), ("b", 5), ("a", 1), ("b", 7), ("a", 4)]
        whole = MetricsRegistry()
        for name, n in ops:
            whole.count(name, n)
            whole.observe("sizes", n)
        left, right = MetricsRegistry(), MetricsRegistry()
        for part, chunk in ((left, ops[:2]), (right, ops[2:])):
            for name, n in chunk:
                part.count(name, n)
                part.observe("sizes", n)
        merged = MetricsRegistry()
        merged.merge(left)
        merged.merge(right)
        assert merged.snapshot() == whole.snapshot()

    def test_snapshot_merge_roundtrip(self):
        reg = MetricsRegistry()
        reg.count("hits", 3)
        reg.gauge("k", 25)
        reg.observe("points", 7.0)
        clone = MetricsRegistry()
        clone.merge_snapshot(json.loads(json.dumps(reg.snapshot())))
        assert clone.snapshot() == reg.snapshot()

    def test_histogram_summary_merge(self):
        a, b = HistogramSummary(), HistogramSummary()
        a.observe(1.0)
        a.observe(9.0)
        b.observe(4.0)
        a.merge(b)
        assert a.to_dict() == {"count": 3, "total": 14.0, "min": 1.0, "max": 9.0}
        assert HistogramSummary.from_dict(a.to_dict()) == a


class TestSpans:
    def test_nesting_depth_and_close_order(self):
        rec = TraceRecorder(clock=FakeClock(start_ns=1000, step_ns=1000))
        with rec.span("outer", kind="demo"):
            with rec.span("inner"):
                pass
            with rec.span("sibling"):
                pass
        assert [e["name"] for e in rec.events] == ["inner", "sibling", "outer"]
        assert [e["depth"] for e in rec.events] == [1, 1, 0]
        assert [e["seq"] for e in rec.events] == [0, 1, 2]
        assert all(e["tid"] == MAIN_TID for e in rec.events)
        inner, sibling, outer = rec.events
        assert inner == {
            "name": "inner", "ts": 2000, "dur": 1000, "tid": 0,
            "depth": 1, "seq": 0, "args": {},
        }
        assert sibling["ts"] == 4000 and sibling["dur"] == 1000
        assert outer["ts"] == 1000 and outer["dur"] == 5000
        assert outer["args"] == {"kind": "demo"}
        assert rec.span_names() == ["inner", "outer", "sibling"]

    def test_identical_runs_record_identical_events(self):
        def record():
            rec = TraceRecorder(clock=FakeClock())
            with rec.span("a"):
                with rec.span("b", x=1):
                    rec.count("n")
            return rec
        assert record().events == record().events
        assert record().snapshot() == record().snapshot()

    def test_merge_retags_worker_events(self):
        worker = TraceRecorder(clock=FakeClock())
        with worker.span("w.task"):
            worker.count("w.calls")
        parent = TraceRecorder(clock=FakeClock())
        parent.merge(worker.snapshot(), tid=3)
        assert [e["tid"] for e in parent.events] == [3]
        assert parent.metrics.counters == {"w.calls": 1}
        # The worker's own events are untouched by the merge.
        assert worker.events[0]["tid"] == MAIN_TID


class TestRecorderSlot:
    def test_disabled_by_default(self):
        assert get_recorder() is None

    def test_using_recorder_scopes_and_restores(self):
        rec = TraceRecorder()
        with using_recorder(rec) as active:
            assert active is rec
            assert get_recorder() is rec
            with using_recorder(None):
                assert get_recorder() is None
            assert get_recorder() is rec
        assert get_recorder() is None

    def test_disabled_span_is_one_shared_noop(self):
        assert telemetry.span("a", x=1) is telemetry.span("b")
        with telemetry.span("a"):
            pass  # must be usable as a context manager

    def test_disabled_metric_helpers_are_noops(self):
        telemetry.count("hits", 3)
        telemetry.gauge("workers", 2)
        telemetry.observe("points", 1.0)
        assert get_recorder() is None

    def test_enabled_helpers_hit_the_active_recorder(self):
        rec = TraceRecorder(clock=FakeClock())
        with using_recorder(rec):
            with telemetry.span("a", x=1):
                telemetry.count("hits")
                telemetry.gauge("workers", 2)
                telemetry.observe("points", 4.0)
        assert rec.span_names() == ["a"]
        assert rec.metrics.counters == {"hits": 1}
        assert rec.metrics.gauges == {"workers": 2.0}
        assert rec.metrics.histograms["points"].count == 1


def _golden_recorder() -> TraceRecorder:
    rec = TraceRecorder(clock=FakeClock(start_ns=1000, step_ns=1000))
    with rec.span("outer", kind="demo"):
        with rec.span("inner"):
            rec.count("hits", 2, kind="json")
        rec.gauge("workers", 2)
        rec.observe("points", 25.0)
    return rec


#: The manifest `summarize(_golden_recorder())` must produce, verbatim.
GOLDEN_SUMMARY = {
    "schema": SUMMARY_SCHEMA,
    "events": 2,
    "tids": [0],
    "spans": {
        "inner": {"count": 1, "total_ns": 1000, "max_ns": 1000},
        "outer": {"count": 1, "total_ns": 3000, "max_ns": 3000},
    },
    "counters": {"hits{kind=json}": 2},
    "gauges": {"workers": 2.0},
    "histograms": {
        "points": {"count": 1, "total": 25.0, "min": 25.0, "max": 25.0}
    },
}


class TestExporters:
    def test_jsonl_golden(self):
        lines = jsonl_lines(_golden_recorder())
        assert [json.loads(line) for line in lines] == [
            {"type": "span", "name": "inner", "ts": 2000, "dur": 1000,
             "tid": 0, "depth": 1, "seq": 0, "args": {}},
            {"type": "span", "name": "outer", "ts": 1000, "dur": 3000,
             "tid": 0, "depth": 0, "seq": 1, "args": {"kind": "demo"}},
            {"type": "counter", "name": "hits{kind=json}", "value": 2},
            {"type": "gauge", "name": "workers", "value": 2.0},
            {"type": "histogram", "name": "points", "count": 1,
             "total": 25.0, "min": 25.0, "max": 25.0},
        ]
        # Byte-stable: the same scenario always serializes identically.
        assert lines == jsonl_lines(_golden_recorder())

    def test_chrome_trace_golden(self):
        document = chrome_trace(_golden_recorder())
        assert document == {
            "traceEvents": [
                {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
                 "args": {"name": "main"}},
                {"ph": "X", "pid": 1, "tid": 0, "name": "inner",
                 "ts": 1.0, "dur": 1.0, "args": {"depth": 1, "seq": 0}},
                {"ph": "X", "pid": 1, "tid": 0, "name": "outer",
                 "ts": 0.0, "dur": 3.0,
                 "args": {"kind": "demo", "depth": 0, "seq": 1}},
            ],
            "displayTimeUnit": "ms",
            "otherData": {"summary": GOLDEN_SUMMARY},
        }

    def test_summarize_golden(self):
        assert summarize(_golden_recorder()) == GOLDEN_SUMMARY
        stamped = summarize(_golden_recorder(), wall_time_s=12.5)
        assert stamped["wall_time_unix"] == 12.5

    def test_write_exporters_roundtrip(self, tmp_path):
        rec = _golden_recorder()
        trace_path = telemetry.write_chrome_trace(tmp_path / "t.json", rec)
        events_path = telemetry.write_jsonl(tmp_path / "e.jsonl", rec)
        summary_path = telemetry.write_summary(
            tmp_path / "s.json", summarize(rec)
        )
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["summary"] == GOLDEN_SUMMARY
        assert [json.loads(l) for l in
                events_path.read_text().splitlines()][0]["type"] == "span"
        assert json.loads(summary_path.read_text()) == GOLDEN_SUMMARY

    def test_summarize_payload_accepts_both_formats(self):
        assert summarize_payload(GOLDEN_SUMMARY) == GOLDEN_SUMMARY
        assert summarize_payload(chrome_trace(_golden_recorder())) == GOLDEN_SUMMARY

    def test_summarize_payload_rebuilds_foreign_traces(self):
        foreign = {
            "traceEvents": [
                {"ph": "X", "tid": 2, "name": "stage", "ts": 0.0, "dur": 1.5},
                {"ph": "M", "tid": 2, "name": "thread_name", "args": {}},
            ]
        }
        manifest = summarize_payload(foreign)
        assert manifest["events"] == 1
        assert manifest["tids"] == [2]
        assert manifest["spans"]["stage"]["total_ns"] == 1500.0

    def test_summarize_payload_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unrecognized trace payload"):
            summarize_payload({"what": "ever"})

    def test_render_summary(self):
        text = render_summary(GOLDEN_SUMMARY)
        assert "2 span events, 1 thread(s)" in text
        assert "outer" in text and "hits{kind=json}" in text
        assert "n=1 mean=25 min=25 max=25" in text


class TestWorkerMerge:
    ITEMS = [2, 3, 4]

    def _run(self, jobs: int) -> TraceRecorder:
        rec = TraceRecorder()
        with using_recorder(rec):
            assert parallel_map(_traced_square, self.ITEMS, jobs=jobs) == [
                4, 9, 16,
            ]
        return rec

    def test_parallel_counters_match_serial(self):
        serial, parallel = self._run(jobs=1), self._run(jobs=2)
        assert parallel.metrics.counters == serial.metrics.counters
        assert serial.metrics.counters["task.calls"] == 3
        assert serial.metrics.counters["task.value"] == 9
        assert parallel.metrics.histograms["task.size"].to_dict() == (
            serial.metrics.histograms["task.size"].to_dict()
        )

    def test_worker_events_merge_with_submission_tids(self):
        rec = self._run(jobs=2)
        task_events = [e for e in rec.events if e["name"] == "task.unit"]
        # One span per item, tagged with 1 + submission index.
        assert sorted(e["tid"] for e in task_events) == [1, 2, 3]
        by_tid = {e["tid"]: e["args"]["n"] for e in task_events}
        assert by_tid == {1: 2, 2: 3, 3: 4}

    def test_serial_events_stay_on_main_tid(self):
        rec = self._run(jobs=1)
        assert {e["tid"] for e in rec.events} == {MAIN_TID}
        assert rec.metrics.gauges["parallel.workers"] == 1.0


class TestNeverPerturbsResults:
    def test_disabled_pool_ships_raw_results(self):
        assert get_recorder() is None
        assert parallel_map(_traced_square, [5, 6], jobs=2) == [25, 36]

    def test_result_dict_gains_no_keys_under_tracing(self):
        clear_pinpoints_cache()
        baseline = measure_benchmark(
            "620.omnetpp_s", runs=("whole",), pinpoints_kwargs=QUICK
        )
        clear_pinpoints_cache()
        with using_recorder(TraceRecorder()) as rec:
            traced = measure_benchmark(
                "620.omnetpp_s", runs=("whole",), pinpoints_kwargs=QUICK
            )
        assert set(traced) == set(baseline)
        assert traced["num_points"] == baseline["num_points"]
        # ...while the trace itself saw all three layers.
        assert any(n.startswith("pinpoints.") for n in rec.span_names())
        assert any(n.startswith("cache.") for n in rec.span_names())

    @pytest.mark.slow
    def test_rendered_output_byte_identical_with_tracing(self):
        benchmarks = ["620.omnetpp_s"]
        clear_pinpoints_cache()
        untraced = render_fig10(run_fig10(benchmarks, jobs=1, **QUICK))
        clear_pinpoints_cache()
        with using_recorder(TraceRecorder()):
            traced_serial = render_fig10(run_fig10(benchmarks, jobs=1, **QUICK))
        clear_pinpoints_cache()
        with using_recorder(TraceRecorder()):
            traced_parallel = render_fig10(run_fig10(benchmarks, jobs=2, **QUICK))
        assert traced_serial == untraced
        assert traced_parallel == untraced
