"""Sequential prefetching and the CacheLevel install path."""

import numpy as np
import pytest

from repro.cache.cache import CacheLevel
from repro.cache.prefetch import PrefetchingHierarchy
from repro.config import ALLCACHE_SIM, CacheConfig
from repro.errors import SimulationError
from repro.pin import AllCache, Engine
from repro.workloads.program import SyntheticProgram
from repro.workloads.schedule import PhaseSchedule

from conftest import make_phase


class TestInstall:
    def test_installed_line_hits(self):
        level = CacheLevel(CacheConfig("T", 1024, 32, 4))
        level.install(np.array([77]))
        assert not level.access_many(np.array([77]))[0]
        # install itself recorded nothing.
        assert level.stats.accesses == 1

    def test_install_direct_mapped(self):
        level = CacheLevel(CacheConfig("T", 1024, 32, 1))
        level.install(np.array([5, 6, 7]))
        assert not level.access_many(np.array([5, 6, 7])).any()

    def test_install_respects_granularity(self):
        level = CacheLevel(CacheConfig("T", 2048, 64, 2))
        level.install(np.array([10]))       # 32 B line 10 == 64 B line 5
        assert not level.access_many(np.array([11]))[0]  # same 64 B line

    def test_install_evicts_lru(self):
        level = CacheLevel(CacheConfig("T", 64, 32, 2))  # 2 lines, 1 set
        level.access_many(np.array([0, 1]))
        level.install(np.array([2]))        # evicts 0 (the LRU)
        miss = level.access_many(np.array([1, 2, 0]))
        assert not miss[0] and not miss[1] and miss[2]

    def test_empty_install(self):
        level = CacheLevel(CacheConfig("T", 1024, 32, 4))
        level.install(np.array([], dtype=np.int64))
        assert level.resident_line_count() == 0


def sequential_batches(num_batches=40, per_batch=256):
    """Cross-batch sequential line stream (a classic memory walk)."""
    return [
        np.arange(i * per_batch, (i + 1) * per_batch, dtype=np.int64)
        for i in range(num_batches)
    ]


def spatial_program(slices=20):
    """Random accesses over a big contiguous region (spatial locality)."""
    phases = [make_phase(
        0, weight=1.0,
        mem_fractions=(0.3, 0.05, 0.03, 0.60, 0.02),
        ws_lines=(8, 40, 1000, 60_000),
    )]
    schedule = PhaseSchedule.from_counts([slices], seed=2)
    return SyntheticProgram("spatial", phases, schedule, 5000, seed=8)


def program_miss_rates(program, hierarchy=None):
    tool = AllCache(hierarchy=hierarchy)
    Engine([tool]).run(program.iter_slices())
    stats = tool.stats()
    return {lv: stats[lv].miss_rate for lv in ("L2", "L3")}


def walk_l2_miss_rate(hierarchy):
    for batch in sequential_batches():
        hierarchy.access_data(batch)
    snapshot = hierarchy.snapshot()
    return snapshot.levels["L2"].miss_rate


class TestPrefetchingHierarchy:
    def test_rejects_bad_degree(self):
        with pytest.raises(SimulationError):
            PrefetchingHierarchy(ALLCACHE_SIM, degree=0)

    def test_sequential_walk_misses_cut(self):
        from repro.cache.hierarchy import CacheHierarchy

        base = walk_l2_miss_rate(CacheHierarchy(ALLCACHE_SIM))
        prefetched = walk_l2_miss_rate(
            PrefetchingHierarchy(ALLCACHE_SIM, degree=4)
        )
        # A cold sequential walk misses everywhere without prefetching;
        # next-line coverage removes nearly every miss.
        assert base > 0.9
        assert prefetched < 0.05

    def test_spatial_locality_exploited(self):
        program = spatial_program()
        base = program_miss_rates(program)
        prefetched = program_miss_rates(
            program, hierarchy=PrefetchingHierarchy(ALLCACHE_SIM, degree=2)
        )
        # Random draws over a contiguous region: neighbours get touched
        # eventually, so sequential prefetch converts many cold misses.
        assert prefetched["L3"] < base["L3"]

    def test_higher_degree_covers_more_of_a_walk(self):
        one = walk_l2_miss_rate(PrefetchingHierarchy(ALLCACHE_SIM, degree=1))
        four = walk_l2_miss_rate(PrefetchingHierarchy(ALLCACHE_SIM, degree=4))
        assert four <= one
        assert one < 0.05  # even degree 1 covers a pure walk

    def test_prefetch_counter(self):
        hierarchy = PrefetchingHierarchy(ALLCACHE_SIM, degree=1)
        for batch in sequential_batches(num_batches=5):
            hierarchy.access_data(batch)
        assert hierarchy.prefetches_issued > 0
        assert hierarchy.prefetch_hits > 0
        hierarchy.reset()
        assert hierarchy.prefetches_issued == 0
        assert hierarchy.prefetch_hits == 0

    def test_allcache_reports_prefetching_config(self):
        hierarchy = PrefetchingHierarchy(ALLCACHE_SIM)
        tool = AllCache(hierarchy=hierarchy)
        assert tool.config is ALLCACHE_SIM
        assert tool.hierarchy is hierarchy
