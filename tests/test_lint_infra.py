"""Linter infrastructure: suppressions, baseline, reporters, config, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    Finding,
    LintConfig,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    load_baseline,
    load_config,
    partition,
    render_json,
    render_text,
    save_baseline,
    scan_suppressions,
)
from repro.lint.cli import main as lint_main
from repro.lint.walker import ModuleContext, iter_python_files

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

pytestmark = pytest.mark.lint

UNSEEDED = "import numpy as np\nRNG = np.random.default_rng()\n"


def write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


def lint_source(tmp_path: Path, source: str, **config_kwargs):
    config = LintConfig(baseline=None, root=tmp_path, **config_kwargs)
    return lint_file(write_module(tmp_path, source), config)


class TestSuppressions:
    def test_line_level_directive(self):
        sup = scan_suppressions("x = 1  # repro-lint: disable=REP001\n")
        assert sup.is_suppressed("REP001", 1)
        assert not sup.is_suppressed("REP002", 1)
        assert not sup.is_suppressed("REP001", 2)

    def test_multiple_ids_and_justification(self):
        sup = scan_suppressions(
            "y = 2  # repro-lint: disable=REP003,REP005 -- intentional\n"
        )
        assert sup.is_suppressed("REP003", 1)
        assert sup.is_suppressed("REP005", 1)

    def test_file_wide_and_all(self):
        sup = scan_suppressions(
            "# repro-lint: disable-file=REP008\n"
            "z = 3  # repro-lint: disable=all\n"
        )
        assert sup.is_suppressed("REP008", 99)
        assert sup.is_suppressed("REP010", 2)
        assert not sup.is_suppressed("REP010", 3)

    def test_malformed_directive_raises(self):
        with pytest.raises(LintError):
            scan_suppressions("x = 1  # repro-lint: disable=bogus\n")

    def test_suppression_silences_finding(self, tmp_path):
        assert len(lint_source(tmp_path, UNSEEDED)) == 1
        suppressed = UNSEEDED.replace(
            "default_rng()",
            "default_rng()  # repro-lint: disable=REP001 -- seeded upstream",
        )
        assert lint_source(tmp_path, suppressed) == []


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(tmp_path, UNSEEDED)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, findings)
        new, old = partition(findings, load_baseline(baseline_path))
        assert new == [] and len(old) == 1

    def test_line_shift_does_not_resurrect(self, tmp_path):
        findings = lint_source(tmp_path, UNSEEDED)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, findings)
        shifted = lint_source(tmp_path, "# a new leading comment\n" + UNSEEDED)
        assert shifted[0].line != findings[0].line
        new, old = partition(shifted, load_baseline(baseline_path))
        assert new == [] and len(old) == 1

    def test_new_findings_surface(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, lint_source(tmp_path, UNSEEDED))
        both = UNSEEDED + "OTHER = np.random.default_rng()\n"
        new, old = partition(
            lint_source(tmp_path, both), load_baseline(baseline_path)
        )
        assert len(new) == 1 and len(old) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []
        assert load_baseline(None) == []

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"version\": 99}", encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(bad)
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(bad)


class TestReporters:
    def sample(self, tmp_path):
        return lint_source(tmp_path, UNSEEDED)

    def test_text_format(self, tmp_path):
        findings = self.sample(tmp_path)
        text = render_text(findings, baselined=2, files=1)
        assert "mod.py:2:" in text
        assert "REP001" in text
        assert "1 error(s), 0 warning(s) in 1 file(s)" in text
        assert "2 baselined" in text

    def test_json_schema(self, tmp_path):
        findings = self.sample(tmp_path)
        payload = json.loads(render_json(findings, baselined=0, files=1))
        assert payload["tool"] == "repro-lint"
        assert payload["schema_version"] == 1
        assert payload["summary"] == {
            "total": 1, "errors": 1, "warnings": 0, "files": 1, "baselined": 0,
        }
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "severity", "snippet",
        }
        assert finding["rule"] == "REP001"
        assert finding["severity"] == "error"


class TestConfig:
    def test_defaults(self):
        config = LintConfig()
        assert config.baseline == ".repro-lint-baseline.json"
        assert config.enable is None and config.disable == frozenset()

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(LintError):
            LintConfig(disable=frozenset({"REP999"}))

    def test_severity_override_and_off(self, tmp_path):
        warned = lint_source(
            tmp_path, UNSEEDED, severity={"REP001": Severity.WARNING}
        )
        assert warned[0].severity is Severity.WARNING
        silenced = lint_source(
            tmp_path, UNSEEDED, severity={"REP001": Severity.OFF}
        )
        assert silenced == []

    def test_pyproject_section(self, tmp_path):
        pytest.importorskip("tomllib")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            "baseline = \"lint-base.json\"\n"
            "disable = [\"REP008\"]\n"
            "exclude = [\"vendored\"]\n"
            "rep008-all-modules = true\n"
            "rep012-allowed = [\"repro/clockproxy.py\"]\n"
            "[tool.repro-lint.severity]\n"
            "REP002 = \"warning\"\n",
            encoding="utf-8",
        )
        config = load_config(pyproject)
        assert config.baseline == "lint-base.json"
        assert config.baseline_path() == tmp_path / "lint-base.json"
        assert config.disable == frozenset({"REP008"})
        assert config.exclude == ("vendored",)
        assert config.rep008_all_modules is True
        assert config.rep012_allowed == ("repro/clockproxy.py",)
        assert config.severity["REP002"] is Severity.WARNING
        assert config.root == tmp_path

    def test_pyproject_unknown_key_raises(self, tmp_path):
        pytest.importorskip("tomllib")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\ntypo = 1\n", encoding="utf-8")
        with pytest.raises(LintError):
            load_config(pyproject)

    def test_missing_explicit_pyproject_raises(self, tmp_path):
        with pytest.raises(LintError):
            load_config(tmp_path / "nope.toml")

    def test_repo_pyproject_parses(self):
        pytest.importorskip("tomllib")
        config = load_config(REPO / "pyproject.toml")
        assert "tests/lint_fixtures" in config.exclude
        assert config.baseline == ".repro-lint-baseline.json"


class TestWalker:
    def test_alias_resolution(self, tmp_path):
        source = (
            "import numpy as np\n"
            "from numpy.random import default_rng as mk\n"
        )
        ctx = ModuleContext(write_module(tmp_path, source), "mod.py", source)
        import ast

        np_attr = ast.parse("np.random.default_rng").body[0].value
        assert ctx.resolve(np_attr) == "numpy.random.default_rng"
        mk_name = ast.parse("mk").body[0].value
        assert ctx.resolve(mk_name) == "numpy.random.default_rng"

    def test_exclude_patterns(self, tmp_path):
        keep = write_module(tmp_path, "x = 1\n", "keep.py")
        write_module(tmp_path, "x = 1\n", "skip_me.py")
        config = LintConfig(root=tmp_path, exclude=("skip_*",))
        assert iter_python_files([tmp_path], config) == [keep]

    def test_syntax_error_is_lint_error(self, tmp_path):
        path = write_module(tmp_path, "def broken(:\n")
        with pytest.raises(LintError):
            lint_file(path, LintConfig(root=tmp_path))

    def test_lint_paths_over_directory(self, tmp_path):
        write_module(tmp_path, UNSEEDED, "a.py")
        write_module(tmp_path, "x = 1\n", "b.py")
        findings = lint_paths([tmp_path], LintConfig(root=tmp_path))
        assert [f.rule for f in findings] == ["REP001"]


class TestCli:
    def pyproject(self, tmp_path: Path) -> Path:
        path = tmp_path / "pyproject.toml"
        path.write_text("[tool.repro-lint]\n", encoding="utf-8")
        return path

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = write_module(tmp_path, "x = 1\n")
        code = lint_main(
            ["--pyproject", str(self.pyproject(tmp_path)), str(target)]
        )
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        target = write_module(tmp_path, UNSEEDED)
        code = lint_main(
            ["--pyproject", str(self.pyproject(tmp_path)), str(target)]
        )
        assert code == 1
        assert "REP001" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        target = write_module(tmp_path, UNSEEDED)
        lint_main(
            ["--pyproject", str(self.pyproject(tmp_path)),
             "--format", "json", str(target)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1

    def test_select_and_ignore(self, tmp_path, capsys):
        target = write_module(tmp_path, UNSEEDED)
        base = ["--pyproject", str(self.pyproject(tmp_path))]
        assert lint_main([*base, "--select", "REP002", str(target)]) == 0
        assert lint_main([*base, "--ignore", "REP001", str(target)]) == 0
        assert lint_main([*base, "--select", "NOPE", str(target)]) == 2
        capsys.readouterr()

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = write_module(tmp_path, UNSEEDED)
        base = ["--pyproject", str(self.pyproject(tmp_path))]
        assert lint_main([*base, "--write-baseline", str(target)]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").exists()
        assert lint_main([*base, str(target)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        assert lint_main([*base, "--no-baseline", str(target)]) == 1

    def test_bad_path_exits_two(self, tmp_path, capsys):
        code = lint_main(
            ["--pyproject", str(self.pyproject(tmp_path)),
             str(tmp_path / "missing.py")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for spec in all_rules():
            assert spec.id in out
        assert len(all_rules()) == 20

    def test_main_cli_forwards_lint(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--list-rules"]) == 0
        assert "REP001" in capsys.readouterr().out


def test_finding_fingerprint_ignores_line():
    a = Finding("REP001", "m.py", 3, 0, "msg", Severity.ERROR, "x = 1")
    b = Finding("REP001", "m.py", 9, 4, "msg", Severity.ERROR, "x = 1")
    assert a.fingerprint == b.fingerprint
