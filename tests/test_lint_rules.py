"""Per-rule fire/no-fire coverage over the lint_fixtures modules."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_file, lint_paths

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

pytestmark = pytest.mark.lint


def run_rule(rule_id: str, filename: str, **config_kwargs):
    """Lint one fixture with a single rule enabled.

    ``root=FIXTURES`` keeps fixture rel-paths free of the ``tests/``
    component, so path-scoped rules (REP009) behave as they would on
    library code.
    """
    config = LintConfig(
        baseline=None,
        root=FIXTURES,
        enable=frozenset({rule_id}),
        **config_kwargs,
    )
    return lint_file(FIXTURES / filename, config)


def run_flow_rule(rule_id: str, filename: str, **config_kwargs):
    """Lint one fixture with a single *project-scope* rule enabled.

    Flow rules run under :func:`lint_paths` (they need the whole-program
    engine, even for a one-module project).
    """
    config = LintConfig(
        baseline=None,
        root=FIXTURES,
        enable=frozenset({rule_id}),
        **config_kwargs,
    )
    return lint_paths([FIXTURES / filename], config)


#: (rule id, bad fixture, expected findings, good fixture)
CASES = [
    ("REP001", "rep001_bad.py", 9, "rep001_good.py"),
    ("REP002", "rep002_bad.py", 5, "rep002_good.py"),
    ("REP003", "rep003_bad.py", 5, "rep003_good.py"),
    ("REP004", "rep004_bad.py", 6, "rep004_good.py"),
    ("REP005", "rep005_bad.py", 7, "rep005_good.py"),
    ("REP006", "rep006_bad.py", 4, "rep006_good.py"),
    ("REP007", "rep007_bad.py", 2, "rep007_good.py"),
    ("REP008", "rep008_bad_pkg/__init__.py", 1, "rep008_good_pkg/__init__.py"),
    ("REP009", "rep009_bad.py", 2, "rep009_good.py"),
    ("REP010", "rep010_bad.py", 3, "rep010_good.py"),
    ("REP011", "rep011_bad.py", 4, "rep011_good.py"),
    ("REP012", "rep012_bad.py", 7, "rep012_good.py"),
    ("REP013", "rep013_bad.py", 3, "rep013_good.py"),
    ("REP018", "rep018_bad.py", 7, "rep018_good.py"),
    ("REP019", "rep019_bad.py", 6, "rep019_good.py"),
    ("REP020", "rep020_bad.py", 3, "rep020_good.py"),
]


@pytest.mark.parametrize(
    "rule_id,bad,expected,good", CASES, ids=[c[0] for c in CASES]
)
def test_rule_fires_and_stays_silent(rule_id, bad, expected, good):
    findings = run_rule(rule_id, bad)
    assert len(findings) == expected, [f.snippet for f in findings]
    assert all(f.rule == rule_id for f in findings)
    assert all(f.path and f.line >= 1 and f.message for f in findings)
    assert run_rule(rule_id, good) == []


#: (rule id, bad fixture, expected findings, good fixture) — flow rules.
FLOW_CASES = [
    ("REP014", "rep014_bad.py", 2, "rep014_good.py"),
    ("REP015", "rep015_bad.py", 3, "rep015_good.py"),
    ("REP016", "rep016_bad.py", 2, "rep016_good.py"),
    ("REP017", "rep017_bad.py", 3, "rep017_good.py"),
]


@pytest.mark.parametrize(
    "rule_id,bad,expected,good", FLOW_CASES, ids=[c[0] for c in FLOW_CASES]
)
def test_flow_rule_fires_and_stays_silent(rule_id, bad, expected, good):
    findings = run_flow_rule(rule_id, bad)
    assert len(findings) == expected, [f.message for f in findings]
    assert all(f.rule == rule_id for f in findings)
    assert all(f.path and f.line >= 1 and f.message for f in findings)
    assert run_flow_rule(rule_id, good) == []


class TestFlowRuleDetails:
    def test_rep014_is_interprocedural(self):
        # The taint enters to_payload through a helper's return summary.
        findings = run_flow_rule("REP014", "rep014_bad.py")
        payload = [f for f in findings if "to_payload" in f.message]
        assert len(payload) == 1
        assert "time.time()" in payload[0].message

    def test_rep014_containment_launders_taint(self):
        # Marking the bad fixture itself as a containment module clears it.
        assert (
            run_flow_rule(
                "REP014", "rep014_bad.py", rep014_allowed=("rep014_bad.py",)
            )
            == []
        )

    def test_rep015_reports_at_dispatch_site_with_write_details(self):
        findings = run_flow_rule("REP015", "rep015_bad.py")
        mutation = [f for f in findings if "mutates" in f.message]
        assert len(mutation) == 1
        assert "_SEEN" in mutation[0].message
        assert "parallel_map" in mutation[0].snippet

    def test_rep015_memo_caches_and_partials_are_exempt(self):
        # rep015_good dispatches both a memo-caching worker and a
        # functools.partial over it; neither may fire.
        assert run_flow_rule("REP015", "rep015_good.py") == []

    def test_rep016_names_the_asymmetric_field(self):
        messages = " ".join(
            f.message for f in run_flow_rule("REP016", "rep016_bad.py")
        )
        assert "'runs'" in messages
        assert "'scale'" in messages

    def test_rep017_names_the_guarded_sink(self):
        messages = [
            f.message for f in run_flow_rule("REP017", "rep017_bad.py")
        ]
        assert any("parallel_map()" in m for m in messages)
        assert any("journal.append()" in m for m in messages)
        assert any(".result()" in m for m in messages)


class TestRuleDetails:
    def test_rep001_reports_alias_resolved_names(self):
        messages = " ".join(f.message for f in run_rule("REP001", "rep001_bad.py"))
        assert "default_rng" in messages
        assert "numpy.random.rand" in messages
        assert "random.shuffle" in messages

    def test_rep002_snippet_points_at_comparison(self):
        findings = run_rule("REP002", "rep002_bad.py")
        assert any("entropy == 0.0" in f.snippet for f in findings)

    def test_rep004_catches_aliased_imports(self):
        findings = run_rule("REP004", "rep004_bad.py")
        assert any("time.time()" in f.message for f in findings)
        assert any("datetime.datetime.utcnow" in f.message for f in findings)

    def test_rep007_names_the_class(self):
        findings = run_rule("REP007", "rep007_bad.py")
        assert {f.message.split()[2] for f in findings} == {
            "PrefetcherConfig", "MemoryConfig",
        }

    def test_rep008_all_modules_mode(self):
        # A plain module without __all__ only fires in all-modules mode.
        assert run_rule("REP008", "rep009_good.py") == []
        findings = run_rule(
            "REP008", "rep009_good.py", rep008_all_modules=True
        )
        assert len(findings) == 1

    def test_rep009_exempts_test_paths(self):
        repo_root = FIXTURES.parents[1]
        config = LintConfig(
            baseline=None, root=repo_root, enable=frozenset({"REP009"})
        )
        assert lint_file(FIXTURES / "rep009_bad.py", config) == []

    def test_rep010_respects_allowed_modules(self):
        findings = run_rule(
            "REP010", "rep010_bad.py", rep010_allowed=("rep010_bad.py",)
        )
        assert findings == []

    def test_rep012_respects_allowed_modules(self):
        findings = run_rule(
            "REP012", "rep012_bad.py", rep012_allowed=("rep012_bad.py",)
        )
        assert findings == []

    def test_rep012_covers_both_clock_families(self):
        messages = " ".join(
            f.message for f in run_rule("REP012", "rep012_bad.py")
        )
        assert "time.perf_counter" in messages
        assert "time.time" in messages
        assert "repro.telemetry.clock" in messages

    def test_rep010_names_literal_kwargs(self):
        findings = run_rule("REP010", "rep010_bad.py")
        by_snippet = " ".join(f.message for f in findings)
        assert "line_size" in by_snippet
        assert "positional geometry" in by_snippet
