"""REP002 fixtures: compliant float guards that must not fire."""

import math


def inequality_guard(entropy: float) -> float:
    if entropy <= 0.0:
        return 0.0
    if entropy >= 1.0:
        return 0.5
    return 0.25


def isclose_guard(x: float) -> bool:
    return math.isclose(x, 0.3, rel_tol=1e-9)


def integer_equality(n: int) -> bool:
    # Integer equality is exact; only float literals are flagged.
    return n == 3


def sentinel_equality(x: float) -> bool:
    # Infinities are exactly representable: a whitelisted guard idiom.
    return x == float("inf") or x == math.inf


def suppressed_exact(weight: float) -> bool:
    return weight == 0.5  # repro-lint: disable=REP002 -- exact by construction
