"""REP017 fixtures: failure paths swallowed around dispatch/journal."""

from repro.parallel import parallel_map


def run_quietly(worker, items):
    try:
        return parallel_map(worker, items)
    except RuntimeError:
        return []


def journal_quietly(journal, record):
    try:
        journal.append(record)
    except OSError:
        pass


def harvest(futures):
    out = []
    for future in futures:
        try:
            out.append(future.result())
        except Exception as exc:
            out.append(None)
    return out
