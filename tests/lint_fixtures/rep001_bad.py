"""REP001 fixtures: every flavour of unseeded randomness."""

import random
import numpy as np
from numpy.random import default_rng as make_rng


def unseeded_default_rng():
    return np.random.default_rng()


def unseeded_alias():
    return make_rng()


def none_seed():
    return np.random.default_rng(None)


def legacy_global_numpy():
    np.random.seed(0)
    return np.random.rand(4)


def unseeded_randomstate():
    return np.random.RandomState()


def stdlib_global():
    random.shuffle([1, 2, 3])
    return random.randint(0, 10)


def unseeded_stdlib_instance():
    return random.Random()
