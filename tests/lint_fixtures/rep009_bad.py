"""REP009 fixtures: assert as input validation in library code."""


def scale_weights(weights):
    assert weights, "weights must be non-empty"
    total = sum(weights)
    assert total > 0
    return [w / total for w in weights]
