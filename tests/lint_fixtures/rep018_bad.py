"""REP018 fixtures: blocking calls stalling an async event loop."""

import subprocess
import time

from repro.telemetry.clock import sleep_s


async def sync_sleep_in_loop():
    time.sleep(0.5)


async def telemetry_sleep_in_loop():
    sleep_s(0.5)


async def unguarded_recv(sock):
    return sock.recv(4096)


async def unguarded_accept(listener):
    conn, _ = listener.accept()
    return conn


async def blocking_sendall(sock, data):
    sock.sendall(data)


async def bare_future_result(future):
    return future.result()


async def blocking_subprocess():
    return subprocess.run(["true"], check=True)
