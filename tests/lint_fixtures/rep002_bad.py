"""REP002 fixtures: float-literal equality comparisons."""


def boundary_equality(entropy: float) -> float:
    if entropy == 0.0:
        return 0.0
    if entropy != 1.0:
        return 0.25
    return 0.5


def reversed_operands(x: float) -> bool:
    return 0.5 == x


def negative_literal(x: float) -> bool:
    return x == -2.5


def chained(x: float, y: float) -> bool:
    return x < y == 3.5
