"""REP013 fixtures: bare excepts swallowing worker dispatch failures."""

from concurrent.futures import ProcessPoolExecutor

from repro.parallel import parallel_map


def swallow_map_failures(items):
    try:
        return parallel_map(str, items)
    except:  # noqa: E722
        return []


def swallow_harvest_failures(futures):
    results = []
    for future in futures:
        try:
            results.append(future.result())
        except:  # noqa: E722
            pass
    return results


def swallow_submit_and_result(fn, items):
    try:
        with ProcessPoolExecutor() as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [f.result() for f in futures]
    except:  # noqa: E722
        return None
