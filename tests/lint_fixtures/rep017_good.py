"""REP017 good: every failure path re-raises, records, or uses the error."""

from repro.parallel import parallel_map


def run_loudly(worker, items):
    try:
        return parallel_map(worker, items)
    except RuntimeError as exc:
        raise RuntimeError(f"dispatch failed: {exc}") from exc


def journal_loudly(journal, record, log):
    try:
        journal.append(record)
    except OSError as exc:
        log.warning("journal write failed: %s", exc)


def harvest(futures, failure_outcome):
    out = []
    for future in futures:
        try:
            out.append(future.result())
        except Exception as exc:
            out.append(failure_outcome(exc))
    return out
