"""REP006 fixtures: specific catches and re-raising broad handlers."""


class ReproError(Exception):
    pass


def specific_catch(run):
    try:
        return run()
    except (ValueError, ReproError):
        return None


def broad_but_reraises(run, log):
    try:
        return run()
    except Exception as exc:
        log(exc)
        raise


def broad_but_wraps(run):
    try:
        return run()
    except Exception as exc:
        raise ReproError(str(exc)) from exc
