"""REP010 fixtures: cache/core geometry from scattered literals."""

from repro.config import CacheConfig, CoreConfig, SystemConfig


def homemade_l3():
    return CacheConfig("L3", size_bytes=512 * 1024, line_size=64,
                       associativity=16, latency_cycles=30)


def positional_geometry():
    return CacheConfig("L1D", 32768, 64, 8)


def tweaked_core():
    return CoreConfig(frequency_ghz=4.2)
