"""REP012 fixtures: raw host-clock reads outside the telemetry clock."""

import time
from time import perf_counter_ns as ticks


def time_a_stage():
    start = time.perf_counter()
    return time.perf_counter() - start


def aliased_monotonic():
    return ticks(), time.monotonic_ns()


def cpu_clocks():
    return time.process_time(), time.thread_time_ns()


def wall_clock_is_also_raw():
    return time.time()
