"""REP007 fixtures: validated, exempt, or non-config classes."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PrefetcherConfig:
    degree: int
    distance: int

    def __post_init__(self) -> None:
        if self.degree <= 0 or self.distance <= 0:
            raise ValueError("prefetcher parameters must be positive")


@dataclass
class _PrivateConfig:
    # Private helpers are exempt: not part of the validated surface.
    knob: int = 1


class PlainConfig:
    # Not a dataclass: construction runs __init__, which can validate.
    def __init__(self, knob: int) -> None:
        self.knob = knob


@dataclass
class ResultRow:
    # Not named *Config: carries results, not machine description.
    benchmark: str
    cpi: float
