"""REP019 clean fixtures: all randomness through the context generator."""

import numpy as np

from repro.sampling.registry import sampler


@sampler("good-context-rng")
def context_rng(features, budget, ctx):
    indices = ctx.rng.choice(features.num_slices, budget, replace=False)
    return np.sort(indices)


@sampler("good-deterministic")
def deterministic(features, budget, ctx):
    # No randomness at all is also fine.
    return list(range(budget))


@sampler("good-nested-uses-ctx")
def nested_uses_ctx(features, budget, ctx):
    def draw(rng):
        return rng.integers(0, features.num_slices, budget)

    return sorted(draw(ctx.rng))
