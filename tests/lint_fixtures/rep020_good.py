"""REP020 no-fire fixtures: sanctioned or unrelated sleeps."""

import time

from repro.resilience.policy import Retry, backoff_sleep
from repro.telemetry.clock import sleep_s


def retry_through_the_shared_helper(fetch):
    retry = Retry(attempts=5, base_delay_s=0.1)
    for attempt in range(1, 6):
        try:
            return fetch()
        except OSError:
            backoff_sleep(retry, 0, attempt + 1)


def polling_loop_without_retries(ready):
    # A plain wait loop: no exception handling, so not a retry shape.
    while not ready():
        sleep_s(0.2)


def retry_loop_without_sleeping(fetch):
    for _ in range(3):
        try:
            return fetch()
        except OSError:
            continue


def sleep_in_nested_worker_is_not_this_loop(pool, items):
    # The nested function runs elsewhere; the loop itself never sleeps.
    for item in items:
        def work():
            time.sleep(0.1)
            return item

        try:
            pool.submit(work)
        except RuntimeError:
            continue
