"""REP018 no-fire fixtures: async code that keeps the loop responsive."""

import asyncio
import subprocess
import time

from repro.telemetry.clock import sleep_s


async def async_sleep_is_fine():
    await asyncio.sleep(0.5)


async def timed_future_result(future):
    # An explicit timeout bounds the stall; not flagged.
    return future.result(0.5)


async def awaiting_streams(reader, writer):
    line = await reader.readline()
    writer.write(line)
    await writer.drain()
    return line


async def nested_sync_helper_runs_elsewhere(pool):
    def work():
        # Runs in an executor thread, not on the event loop.
        time.sleep(0.1)
        return 1

    return await asyncio.get_event_loop().run_in_executor(pool, work)


def sync_functions_may_block(sock):
    sleep_s(0.2)
    return subprocess.run(["true"]), sock.recv(4096)
