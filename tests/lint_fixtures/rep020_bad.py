"""REP020 fixtures: ad-hoc sleeps inside retry loops."""

import time

from repro.telemetry.clock import sleep_s


def retry_with_time_sleep(fetch):
    for attempt in range(5):
        try:
            return fetch()
        except OSError:
            time.sleep(2 ** attempt)


def retry_with_telemetry_sleep(fetch):
    while True:
        try:
            return fetch()
        except ValueError:
            sleep_s(0.5)


def retry_sleeping_before_the_try(fetch):
    # The sleep sits outside the try but inside the same loop: still an
    # ad-hoc backoff schedule.
    for attempt in range(3):
        sleep_s(attempt * 0.1)
        try:
            return fetch()
        except OSError:
            continue
