"""REP014 good: payloads built from contained or seeded values only."""

from random import Random

from repro.telemetry.clock import wall_time_s


def stamp():
    return wall_time_s()


class RunResult:
    def __init__(self, value):
        self.value = value

    def to_payload(self):
        return {"value": self.value, "generated_at": stamp()}


def persist(store, rng_seed):
    rng = Random(rng_seed)
    store.put_json("metrics", {"name": "x"}, {"jitter": rng.random()})
