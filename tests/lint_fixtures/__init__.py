"""Lint-rule fixture modules.

Each ``repNNN_bad.py`` contains constructs its rule must flag; each
``repNNN_good.py`` contains the nearest compliant idioms, which must
stay silent.  These files are *parsed* by the linter tests, never
imported or executed — and ``[tool.repro-lint] exclude`` keeps them out
of real lint runs.
"""
