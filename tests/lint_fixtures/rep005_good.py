"""REP005 fixtures: immutable defaults / None-and-construct idiom."""


def none_default(history=None):
    if history is None:
        history = []
    history.append(1)
    return history


def immutable_defaults(scale=1.0, name="L3", dims=(4, 2), flags=frozenset()):
    return scale, name, dims, flags
