"""REP010 fixtures: geometry derived from the config presets."""

from dataclasses import replace

from repro.config import SNIPER_SIM, CacheConfig, CacheHierarchyConfig


def swept_l3(l3_bytes: int) -> CacheConfig:
    # Only the swept quantity varies; the rest comes from the preset.
    return replace(SNIPER_SIM.caches.l3, size_bytes=l3_bytes)


def scaled_hierarchy(factor: float) -> CacheHierarchyConfig:
    return SNIPER_SIM.caches.scaled(factor)


def reassembled(l3: CacheConfig) -> CacheHierarchyConfig:
    caches = SNIPER_SIM.caches
    return CacheHierarchyConfig(l1i=caches.l1i, l1d=caches.l1d,
                                l2=caches.l2, l3=l3)
