"""REP016 fixtures: asymmetric to_payload/from_payload field sets."""


class SampleResult:
    def __init__(self, benchmark, error, runs):
        self.benchmark = benchmark
        self.error = error
        self.runs = runs

    def to_payload(self):
        return {
            "benchmark": self.benchmark,
            "error": self.error,
            "runs": self.runs,
        }

    @classmethod
    def from_payload(cls, payload):
        return cls(
            benchmark=payload["benchmark"], error=payload["error"], runs=3
        )


class CostResult:
    def __init__(self, seconds):
        self.seconds = seconds

    def to_payload(self):
        return {"seconds": self.seconds}

    @classmethod
    def from_payload(cls, payload):
        return cls(seconds=payload["seconds"] * payload["scale"])
