"""REP016 good: symmetric round trips; dynamic sides are not guessed at."""


class GoodResult:
    def __init__(self, benchmark, error):
        self.benchmark = benchmark
        self.error = error

    def to_payload(self):
        return {"benchmark": self.benchmark, "error": self.error}

    @classmethod
    def from_payload(cls, payload):
        return cls(
            benchmark=payload["benchmark"], error=payload.get("error", 0.0)
        )


class DynamicResult:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def to_payload(self):
        return {"x": self.x, "y": self.y}

    @classmethod
    def from_payload(cls, payload):
        return cls(**payload)
