"""A public package with an explicit export surface (REP008-clean)."""


def helper():
    return 1


__all__ = ["helper"]
