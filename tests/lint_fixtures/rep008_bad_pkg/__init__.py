"""A public package whose __init__ exports nothing explicitly (REP008)."""


def helper():
    return 1
