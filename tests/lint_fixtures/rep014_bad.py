"""REP014 fixtures: nondeterminism taint reaching serialized output."""

import random
import time


def stamp():
    return time.time()


class RunResult:
    def __init__(self, value):
        self.value = value

    def to_payload(self):
        # Interprocedural: the taint enters through stamp()'s summary.
        return {"value": self.value, "generated_at": stamp()}


def persist(store, metrics):
    jitter = random.random()
    store.put_json("metrics", {"name": "x"}, {"jitter": jitter, **metrics})
