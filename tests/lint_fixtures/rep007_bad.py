"""REP007 fixtures: config dataclasses with no construction-time checks."""

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class PrefetcherConfig:
    degree: int
    distance: int


@dataclasses.dataclass
class MemoryConfig:
    latency_cycles: int = 200
    channels: int = 2
