"""REP004 fixtures: modeled/injected time never fires."""

import time


def measure_host_overhead():
    # Monotonic clocks measure the *host*, not simulated time; allowed.
    start = time.perf_counter()
    return time.perf_counter() - start, time.monotonic()


def stamp_result(timestamp: float):
    # Timestamps injected by the caller keep replays deterministic.
    return {"finished_at": timestamp}


def modeled_time(cycles: int, frequency_ghz: float) -> float:
    return cycles / (frequency_ghz * 1e9)
