"""REP015 good: workers return values; memo caches are exempt."""

import functools

from repro.parallel import parallel_map

_CACHE = {}


def expensive(name, suffix=""):
    if name in _CACHE:
        return _CACHE[name]
    value = name.upper() + suffix
    _CACHE[name] = value
    return value


def run_all(names):
    return parallel_map(expensive, names)


def run_bound(names):
    worker = functools.partial(expensive, suffix="!")
    return parallel_map(worker, names)
