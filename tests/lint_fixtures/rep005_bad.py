"""REP005 fixtures: mutable default arguments."""

import collections


def list_default(history=[]):
    history.append(1)
    return history


def dict_and_set_defaults(cache={}, seen=set()):
    return cache, seen


def constructor_defaults(queue=collections.deque(), table=dict()):
    return queue, table


def kwonly_default(*, acc=[0]):
    return acc


lambda_default = lambda pool=[]: pool  # noqa: E731
