"""REP019 fixtures: samplers sidestepping the seeded context generator."""

import random

import numpy as np
from numpy.random import default_rng as make_rng

from repro.sampling.registry import sampler


@sampler("bad-global-numpy")
def global_numpy(features, budget, ctx):
    return np.random.choice(features.num_slices, budget)  # 1


@sampler("bad-private-generator", requires=("bbv",))
def private_generator(features, budget, ctx):
    rng = np.random.default_rng(ctx.seed)  # 2: even seeded is banned
    return rng.choice(features.num_slices, budget)


@sampler("bad-aliased-constructor")
def aliased_constructor(features, budget, ctx):
    return make_rng(0).integers(0, features.num_slices, budget)  # 3


@sampler("bad-stdlib")
def stdlib_random(features, budget, ctx):
    pool = list(range(features.num_slices))
    random.shuffle(pool)  # 4
    return sorted(random.sample(pool, budget))  # 5


@sampler("bad-nested-helper")
def nested_helper(features, budget, ctx):
    def draw():
        return random.Random(7).sample(range(features.num_slices), budget)  # 6

    return draw()


def plain_helper_is_fine(num_slices, budget):
    # Not decorated: REP019 stays silent (REP001 owns this hazard).
    return np.random.default_rng(0).choice(num_slices, budget)
