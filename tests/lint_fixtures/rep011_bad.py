"""Fixture: order-dependent reductions over completion-ordered results."""

from concurrent.futures import ProcessPoolExecutor, as_completed


def collect_list(futures):
    results = []
    for future in as_completed(futures):
        results.append(future.result())  # arrival order -> list order
    return results


def sum_floats(futures):
    total = 0.0
    for future in as_completed(futures):
        total += future.result()  # float sum depends on arrival order
    return total


def comprehension(futures):
    return [f.result() for f in as_completed(futures)]


def drain_pool(pool, work, items):
    out = []
    for value in pool.imap_unordered(work, items):
        out.append(value)
    return out
