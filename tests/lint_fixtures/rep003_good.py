"""REP003 fixtures: ordered or order-free set usage never fires."""


def sorted_iteration(names):
    return [n for n in sorted(set(names))]


def loop_over_sorted_literal():
    out = []
    for name in sorted({"mcf", "xz", "leela"}):
        out.append(name)
    return out


def membership_and_aggregation(names, candidate):
    # Membership tests and order-free reductions over sets are fine.
    pool = set(names)
    return candidate in pool, len(pool)


def list_of_list(names):
    return list([n for n in names])
