"""REP013 no-fire fixtures: dispatch failures handled or re-raised."""

from concurrent.futures.process import BrokenProcessPool

from repro.parallel import parallel_map


def typed_handler(items):
    try:
        return parallel_map(str, items)
    except BrokenProcessPool:
        return [str(item) for item in items]


def reraising_bare_except(items):
    try:
        return parallel_map(str, items)
    except:  # noqa: E722
        raise


def unrelated_bare_except(path):
    try:
        return path.read_text()
    except:  # noqa: E722
        return None
