"""REP006 fixtures: swallowed broad exceptions."""


def bare_except(run):
    try:
        return run()
    except:  # noqa: E722
        return None


def broad_exception(run):
    try:
        return run()
    except Exception:
        return None


def broad_base_exception(run):
    try:
        return run()
    except BaseException as exc:
        print(exc)
        return None


def broad_in_tuple(run):
    try:
        return run()
    except (ValueError, Exception):
        return None
