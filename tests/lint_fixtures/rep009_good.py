"""REP009 fixtures: raising real exceptions for validation."""


class ConfigError(Exception):
    pass


def scale_weights(weights):
    if not weights:
        raise ConfigError("weights must be non-empty")
    total = sum(weights)
    if total <= 0:
        raise ConfigError("weights must sum to a positive value")
    return [w / total for w in weights]
