"""REP004 fixtures: host wall-clock reads in simulation code."""

import time
import datetime
from datetime import datetime as dt
from time import time as now


def stamp_result():
    return {"finished_at": time.time(), "ns": time.time_ns()}


def aliased_time():
    return now()


def datetime_reads():
    return datetime.datetime.now(), dt.utcnow(), datetime.date.today()
