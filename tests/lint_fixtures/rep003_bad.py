"""REP003 fixtures: hash-ordered iteration feeding ordered output."""


def loop_over_set_literal():
    out = []
    for name in {"mcf", "xz", "leela"}:
        out.append(name)
    return out


def loop_over_set_call(names):
    report = []
    for name in set(names):
        report.append(name)
    return report


def comprehension_over_frozenset(names):
    return [n.upper() for n in frozenset(names)]


def list_of_set(names):
    return list({n.strip() for n in names})


def joined_set(names):
    return ", ".join(set(names))
