"""REP015 fixtures: parallel-dispatched workers that are not pool-safe."""

from repro.parallel import parallel_map

_SEEN = []


def record(name):
    _SEEN.append(name)
    return name


def run_all(names):
    return parallel_map(record, names)


def run_lambda(names):
    return parallel_map(lambda n: n.upper(), names)


def run_nested(names):
    def worker(n):
        return n.lower()

    return parallel_map(worker, names)
