"""REP012 fixtures: clock reads routed through repro.telemetry.clock."""

from repro.telemetry.clock import monotonic_ns, wall_time_s


def time_a_stage():
    start = monotonic_ns()
    return monotonic_ns() - start


def stamp_manifest():
    return {"wall_time_unix": wall_time_s()}


def modeled_time(cycles: int, frequency_ghz: float) -> float:
    # Simulated time comes from the timing model, never a host clock.
    return cycles / (frequency_ghz * 1e9)
