"""Fixture: order-safe consumption of completion-ordered results."""

from concurrent.futures import ProcessPoolExecutor, as_completed


def keyed_by_submission(pool, fns):
    futures = {pool.submit(fn): index for index, fn in enumerate(fns)}
    results = [None] * len(futures)
    for future in as_completed(futures):
        results[futures[future]] = future.result()  # keyed: order-free
    return results


def submission_order(pool, fns):
    futures = [pool.submit(fn) for fn in fns]
    return [future.result() for future in futures]


def unordered_sink(futures):
    seen = set()
    for future in as_completed(futures):
        seen.add(future.result())  # set contents ignore arrival order
    return seen


def progress_only(futures):
    done = 0
    for future in as_completed(futures):
        future.result()
        done = done + 1  # plain rebind, no order-sensitive accumulator
    return done
