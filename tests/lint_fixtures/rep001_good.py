"""REP001 fixtures: explicit seeding never fires."""

import random
import numpy as np
from numpy.random import default_rng


def seeded_default_rng(slice_index: int):
    return np.random.default_rng(0xB4A9C4 ^ slice_index)


def seeded_alias():
    return default_rng(seed=7)


def seeded_randomstate():
    return np.random.RandomState(42)


def seeded_stdlib_instance():
    return random.Random(1234)


def generator_methods(rng: np.random.Generator):
    # Methods on an explicit Generator instance are fine.
    return rng.random(4), rng.integers(0, 8)
