"""Differential tests for the fused cache engine and its backends.

The load-bearing invariant of ``repro.cache.fused``: every backend
(``numpy`` per-batch, ``fused`` chunked sweeps, ``native`` compiled
walk, ``numba`` when importable) produces **bit-identical** results —
same per-level miss counts, same writeback counts, same rendered
experiment bytes — differing only in speed.  These tests pin that
invariant across the matrix of geometries (direct-mapped and
associative), write traffic (dirty and clean), and warmup, plus the
kernels' own oracles (the sequential per-access loops).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.cache import build_hierarchy, resolve_backend
from repro.cache.cache import CacheLevel, dm_sweep, set_order
from repro.cache.fused import BACKENDS, FusedHierarchy
from repro.cache.hierarchy import CacheHierarchy
from repro.config import ALLCACHE_SIM, SNIPER_TABLE_III, CacheConfig
from repro.errors import ConfigError
from repro.isa.trace import SliceTrace
from repro.pin.engine import Engine
from repro.pin.tools.allcache import AllCache

try:
    import numba  # noqa: F401 -- availability probe only

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

#: Backends that resolve to themselves on this machine.
AVAILABLE = [b for b in BACKENDS if resolve_backend(b) == b]


def make_trace(rng, index=0, n_mem=300, n_if=60, writes=True, span=2000):
    """A small random slice trace over a bounded address span."""
    mem = rng.integers(0, span, size=n_mem).astype(np.int64)
    if writes:
        is_write = rng.random(n_mem) < 0.3
    else:
        is_write = np.zeros(n_mem, dtype=bool)
    return SliceTrace(
        index=index,
        phase_id=0,
        instruction_count=1000,
        block_counts=np.array([1000], dtype=np.int64),
        class_counts=np.array([700, 200, 100, 0], dtype=np.int64),
        mem_lines=mem,
        mem_is_write=is_write,
        ifetch_lines=rng.integers(4096, 4096 + 300, size=n_if).astype(
            np.int64
        ),
        branch_count=10,
        branch_entropy=0.5,
    )


def level_stats(tool: AllCache) -> dict:
    return {
        name: (s.accesses, s.misses, s.writebacks)
        for name, s in tool.stats().items()
    }


class TestDmSweepKernel:
    """The run-collapse sweep against the sequential DM oracle."""

    def _pair(self, size=2048, line=32):
        config = CacheConfig("T", size_bytes=size, line_size=line,
                             associativity=1)
        return CacheLevel(config), CacheLevel(config, reference=True)

    @pytest.mark.parametrize("with_writes", [True, False])
    def test_fuzz_matches_reference(self, with_writes):
        rng = np.random.default_rng(7 + with_writes)
        fast, oracle = self._pair()
        for batch in range(40):
            n = int(rng.integers(1, 400))
            lines = rng.integers(0, 600, size=n) * 32
            writes = (
                (rng.random(n) < 0.4) if with_writes else None
            )
            miss_f = fast.access_many(lines, writes)
            miss_o = oracle.access_many(lines, writes)
            np.testing.assert_array_equal(miss_f, miss_o)
            assert fast.stats.writebacks == oracle.stats.writebacks
            np.testing.assert_array_equal(fast._resident, oracle._resident)
            np.testing.assert_array_equal(fast._dirty, oracle._dirty)

    def test_sweep_reports_sorted_positions_and_updates_state(self):
        resident = np.full(8, -1, dtype=np.int64)
        dirty = np.zeros(8, dtype=bool)
        lines = np.array([0, 8, 0, 16, 0], dtype=np.int64)  # set 0 x5
        writes = np.array([True, False, False, False, False])
        miss_idx, writebacks = dm_sweep(resident, dirty, 7, 3, lines, writes)
        # Runs: [0], [8], [0], [16], [0] -- every access is a run head
        # and every run is a miss; the dirty first run is written back
        # when 8 evicts it.
        assert sorted(miss_idx.tolist()) == [0, 1, 2, 3, 4]
        assert writebacks == 1
        assert resident[0] == 0 and not dirty[0]

    def test_set_order_groups_by_set_preserving_program_order(self):
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 512, size=1000).astype(np.int64)
        order = set_order(lines, 63)
        expected = np.argsort(lines & 63, kind="stable")
        np.testing.assert_array_equal(order, expected)


class TestInstallVectorized:
    """Grouped install against the per-line reference loop."""

    def _pair(self, assoc=4):
        config = CacheConfig("T", size_bytes=4096, line_size=32,
                             associativity=assoc)
        return CacheLevel(config), CacheLevel(config, reference=True)

    @pytest.mark.parametrize("assoc", [2, 4, 8])
    def test_fuzz_matches_reference(self, assoc):
        rng = np.random.default_rng(13 + assoc)
        fast, oracle = self._pair(assoc)
        for round_ in range(25):
            n = int(rng.integers(1, 200))
            lines = rng.integers(0, 400, size=n) * 32
            if round_ % 2:
                writes = rng.random(n) < 0.3
                np.testing.assert_array_equal(
                    fast.access_many(lines, writes),
                    oracle.access_many(lines, writes),
                )
            else:
                fast.install(lines)
                oracle.install(lines)
        probe = rng.integers(0, 400, size=500) * 32
        np.testing.assert_array_equal(
            fast.access_many(probe), oracle.access_many(probe)
        )
        assert fast.stats.writebacks == oracle.stats.writebacks

    def test_repeat_with_interleaved_line_is_not_deduplicated(self):
        # Install stream [a, c, a]: dropping the second ``a`` (as a
        # non-consecutive dedup would) loses its move-to-MRU, flipping
        # which line a later conflict evicts.
        fast, oracle = self._pair(assoc=2)
        a, b = 0, 32 * 128  # same set of the 2-way config
        c = 32 * 256
        for level in (fast, oracle):
            level.access_many(np.array([a, b], dtype=np.int64))
            level.install(np.array([a, c, a], dtype=np.int64))
        probe = np.array([b, a], dtype=np.int64)
        np.testing.assert_array_equal(
            fast.access_many(probe), oracle.access_many(probe)
        )


@pytest.mark.parametrize("backend", AVAILABLE)
@pytest.mark.parametrize("caches", [ALLCACHE_SIM, SNIPER_TABLE_III.caches],
                         ids=["direct-mapped", "associative"])
@pytest.mark.parametrize("writes", [True, False], ids=["dirty", "clean"])
@pytest.mark.parametrize("warmup", [0, 4], ids=["cold", "warmed"])
class TestBackendMatrix:
    """backends x geometry x write-traffic x warmup: identical stats."""

    def test_matches_numpy_reference(self, backend, caches, writes, warmup):
        rng = np.random.default_rng(42)
        traces = [
            make_trace(rng, index=i, writes=writes) for i in range(12)
        ]

        def replay(b):
            tool = AllCache(config=caches, backend=b)
            Engine([tool]).run(traces[warmup:], warmup=traces[:warmup])
            return level_stats(tool)

        reference = replay("numpy")
        assert replay(backend) == reference
        assert reference["L1D"][0] == sum(
            t.mem_lines.size for t in traces[warmup:]
        )


class TestChunkInvariance:
    """Chunk boundaries are invisible: any flush threshold, same result."""

    @pytest.mark.parametrize("chunk", [1, 997, 10**9])
    def test_results_do_not_depend_on_chunk(self, chunk):
        rng = np.random.default_rng(3)
        traces = [make_trace(rng, index=i) for i in range(10)]
        reference = CacheHierarchy(ALLCACHE_SIM)
        fused = FusedHierarchy(ALLCACHE_SIM, backend="fused",
                               chunk_refs=chunk)
        for hierarchy in (reference, fused):
            for trace in traces:
                hierarchy.process_trace(trace)
            hierarchy.drain()
        assert fused.snapshot() == reference.snapshot()

    def test_direct_access_drains_buffer_first(self):
        rng = np.random.default_rng(5)
        trace = make_trace(rng)
        reference = CacheHierarchy(ALLCACHE_SIM)
        fused = FusedHierarchy(ALLCACHE_SIM, backend="fused",
                               chunk_refs=10**9)
        extra = np.array([0, 64, 0], dtype=np.int64)
        for hierarchy in (reference, fused):
            hierarchy.process_trace(trace)
            # The per-batch call on the buffered hierarchy must observe
            # the slice's effects, i.e. drain before accessing.
            hierarchy.access_data(extra)
        assert fused.snapshot() == reference.snapshot()


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            resolve_backend("verilog")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "fused")
        assert resolve_backend() == "fused"
        assert isinstance(build_hierarchy(ALLCACHE_SIM), FusedHierarchy)
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "numpy")
        assert resolve_backend() == "numpy"
        built = build_hierarchy(ALLCACHE_SIM)
        assert not isinstance(built, FusedHierarchy)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_missing_numba_falls_back_to_fused_with_counter(self):
        recorder = telemetry.TraceRecorder()
        with telemetry.using_recorder(recorder):
            assert resolve_backend("numba") == "fused"
        key = "cache.fused.fallback{requested=numba,to=fused}"
        assert recorder.metrics.counters.get(key, 0) == 1

    def test_auto_resolves_to_available_backend(self):
        assert resolve_backend("auto") in ("native", "fused")


class TestFusedTelemetry:
    def test_drain_emits_span_and_counters(self):
        rng = np.random.default_rng(9)
        recorder = telemetry.TraceRecorder()
        with telemetry.using_recorder(recorder):
            fused = FusedHierarchy(ALLCACHE_SIM, backend="fused")
            fused.process_trace(make_trace(rng))
            fused.drain()
        names = [e["name"] for e in recorder.events]
        assert "cache.fused" in names
        counters = recorder.metrics.counters
        assert counters.get("cache.fused.waves", 0) > 0
        assert counters.get("cache.fused.backend{backend=fused}", 0) >= 1


class TestExperimentBytes:
    """fig8/fig10 rendered output is backend-independent, byte for byte."""

    BENCH = ["620.omnetpp_s"]

    def _sweep(self, backend, tmp_path, monkeypatch):
        from repro.experiments import common
        from repro.experiments.common import configure_cache
        from repro.experiments.fig8 import render_fig8, run_fig8
        from repro.experiments.fig10 import render_fig10, run_fig10

        monkeypatch.setenv("REPRO_CACHE_BACKEND", backend)
        configure_cache(tmp_path / backend)
        common._PINPOINTS_CACHE.clear()
        common._WHOLE_CACHE.clear()
        common._POINTS_CACHE.clear()
        quick = dict(slice_size=3000, total_slices=120)
        return "\n".join([
            render_fig8(run_fig8(self.BENCH, jobs=1, **quick)),
            render_fig10(run_fig10(self.BENCH, jobs=1, **quick)),
        ])

    def test_fig8_fig10_bytes_identical_across_backends(
        self, tmp_path, monkeypatch
    ):
        renders = {
            backend: self._sweep(backend, tmp_path, monkeypatch)
            for backend in AVAILABLE
        }
        reference = renders["numpy"]
        assert "620.omnetpp_s" in reference
        for backend, text in renders.items():
            assert text == reference, f"{backend} diverged from numpy"
