"""Resilience policies, outcome records, and the fault-spec grammar."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    FaultClause,
    InjectedFaultError,
    ItemOutcome,
    MapOutcome,
    OnFailure,
    ResiliencePolicy,
    Retry,
    Timeout,
    parse_spec,
)
from repro.resilience.faults import PRESETS, STORE_FAULT_KINDS
from repro.resilience.policy import KIND_EXCEPTION, STATUS_FAILED, STATUS_OK

pytestmark = pytest.mark.resilience


class TestOnFailure:
    def test_parse_every_mode(self):
        assert OnFailure.parse("fail") is OnFailure.FAIL
        assert OnFailure.parse("skip") is OnFailure.SKIP
        assert OnFailure.parse("serial-fallback") is OnFailure.SERIAL_FALLBACK

    def test_parse_passes_instances_through(self):
        assert OnFailure.parse(OnFailure.SKIP) is OnFailure.SKIP

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigError, match="on-failure"):
            OnFailure.parse("retry-forever")


class TestTimeout:
    def test_positive_seconds_accepted(self):
        assert Timeout(0.5).seconds == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.5, True])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ConfigError):
            Timeout(bad)


class TestRetry:
    def test_default_is_single_attempt_no_delay(self):
        retry = Retry()
        assert retry.attempts == 1
        assert retry.delay_s(0, 1) == 0.0
        assert retry.delay_s(0, 2) == 0.0  # base delay 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(attempts=0),
            dict(attempts=True),
            dict(base_delay_s=-0.1),
            dict(multiplier=0.5),
            dict(jitter=1.5),
            dict(jitter=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            Retry(**kwargs)

    def test_backoff_is_exponential(self):
        retry = Retry(attempts=4, base_delay_s=0.1, multiplier=2.0)
        assert retry.delay_s(3, 2) == pytest.approx(0.1)
        assert retry.delay_s(3, 3) == pytest.approx(0.2)
        assert retry.delay_s(3, 4) == pytest.approx(0.4)

    def test_jitter_is_deterministic_and_bounded(self):
        retry = Retry(attempts=3, base_delay_s=0.1, jitter=0.5, seed=11)
        first = retry.delay_s(2, 2)
        assert first == retry.delay_s(2, 2)  # same (seed, item, attempt)
        assert 0.1 <= first <= 0.15
        # A different item gets a different (but still bounded) delay.
        other = retry.delay_s(3, 2)
        assert other != first
        assert 0.1 <= other <= 0.15

    def test_first_attempt_never_delays(self):
        retry = Retry(attempts=3, base_delay_s=5.0)
        assert retry.delay_s(0, 1) == 0.0


class TestPolicy:
    def test_strict_defaults(self):
        policy = ResiliencePolicy.strict()
        assert policy.retry.attempts == 1
        assert policy.timeout is None
        assert policy.on_failure is OnFailure.FAIL

    def test_from_options(self):
        policy = ResiliencePolicy.from_options(
            retries=2, timeout_s=1.5, on_failure="skip"
        )
        assert policy.retry.attempts == 3
        assert policy.timeout == Timeout(1.5)
        assert policy.on_failure is OnFailure.SKIP

    def test_from_options_rejects_negative_retries(self):
        with pytest.raises(ConfigError, match="retries"):
            ResiliencePolicy.from_options(retries=-1)


class TestOutcomes:
    def test_item_outcome_payload(self):
        outcome = ItemOutcome(
            index=2, label="505.mcf_r", status=STATUS_FAILED, attempts=3,
            kind=KIND_EXCEPTION, error="ValueError: boom",
        )
        assert not outcome.ok
        assert outcome.to_payload() == {
            "index": 2, "label": "505.mcf_r", "status": "failed",
            "attempts": 3, "kind": "exception", "error": "ValueError: boom",
        }

    def test_map_outcome_survivor_accounting(self):
        outcomes = [
            ItemOutcome(0, "a", STATUS_OK, 1, value=10),
            ItemOutcome(1, "b", STATUS_FAILED, 2, kind=KIND_EXCEPTION,
                        error="x"),
            ItemOutcome(2, "c", STATUS_OK, 1, value=30),
        ]
        result = MapOutcome(outcomes)
        assert result.results == [10, 30]
        assert [o.label for o in result.failed] == ["b"]
        assert result.total == 3 and result.completed == 2
        assert result.degraded
        assert result.summary() == "2 of 3 items completed; skipped: b"

    def test_complete_map_outcome_is_not_degraded(self):
        result = MapOutcome([ItemOutcome(0, "a", STATUS_OK, 1, value=1)])
        assert not result.degraded
        assert result.summary() == "1 of 1 items completed"


class TestSpecGrammar:
    def test_single_clause_options(self):
        plan = parse_spec("crash:items=2,5:attempt=2")
        (clause,) = plan.clauses
        assert clause.kind == "crash"
        assert clause.items == (2, 5)
        assert clause.attempt == 2

    def test_multiple_clauses_and_renamed_options(self):
        plan = parse_spec("hang:items=1:hang=0.5; truncate:every=7:kinds=metrics")
        hang, truncate = plan.clauses
        assert hang.hang_s == 0.5
        assert truncate.every == 7
        assert truncate.kinds == ("metrics",)

    def test_preset_resolves(self):
        plan = parse_spec("ci-default")
        assert plan.spec == PRESETS["ci-default"]
        assert {c.kind for c in plan.clauses} == set(STORE_FAULT_KINDS)
        # The CI preset never touches the "result" artifact kind: a
        # degraded result cached as complete would poison later runs.
        assert all("result" not in c.kinds for c in plan.clauses)

    @pytest.mark.parametrize(
        "bad",
        ["", "  ;  ", "meteor:items=1", "crash:items", "crash:every=0",
         "crash:p=1.5", "hang:hang=0", "crash:items=x", "crash:wat=1"],
    )
    def test_rejected_specs(self, bad):
        with pytest.raises(ConfigError):
            parse_spec(bad)


class TestTriggers:
    def test_items_trigger_exactly(self):
        clause = FaultClause(kind="crash", items=(1, 3))
        assert [i for i in range(5) if clause.triggers(i)] == [1, 3]

    def test_every_skips_the_first_writes(self):
        clause = FaultClause(kind="truncate", every=3)
        assert [i for i in range(9) if clause.triggers(i)] == [2, 5, 8]

    def test_attempt_gating(self):
        clause = FaultClause(kind="crash", items=(0,), attempt=1)
        assert clause.triggers(0, attempt=1)
        assert not clause.triggers(0, attempt=2)

    def test_probability_is_seed_deterministic(self):
        clause = FaultClause(kind="crash", probability=0.5, seed=3)
        hits = [i for i in range(64) if clause.triggers(i)]
        assert hits == [i for i in range(64) if clause.triggers(i)]
        assert 0 < len(hits) < 64
        reseeded = FaultClause(kind="crash", probability=0.5, seed=4)
        assert hits != [i for i in range(64) if reseeded.triggers(i)]

    def test_worker_clause_selection(self):
        plan = parse_spec("truncate:every=2;crash:items=1")
        assert plan.worker_clause(0) is None
        assert plan.worker_clause(1).kind == "crash"

    def test_store_clause_advances_per_kind_ordinals(self):
        plan = parse_spec("truncate:every=2:kinds=metrics")
        # metrics writes 0,1,2,3 -> ordinals 0..3; every=2 hits 1 and 3.
        fired = [plan.store_clause("metrics") is not None for _ in range(4)]
        assert fired == [False, True, False, True]
        # A different kind keeps its own ordinal and never matches the
        # kinds= filter.
        assert plan.store_clause("pinpoints") is None

    def test_injected_fault_error_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFaultError, ReproError)
