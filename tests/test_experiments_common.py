"""Shared experiment plumbing: measurement caching and resolution."""

import numpy as np
import pytest

from repro.config import ALLCACHE_SIM, ALLCACHE_TABLE_I
from repro.errors import ConfigError
from repro.experiments import common
from repro.experiments.common import (
    clear_pinpoints_cache,
    configure_cache,
    map_benchmarks,
    measure_benchmark,
    measure_points,
    measure_whole,
    pinpoints_for,
    resolve_benchmarks,
)
from repro.workloads.spec2017 import benchmark_names

from conftest import QUICK


class TestResolveBenchmarks:
    def test_default_is_full_suite(self):
        assert resolve_benchmarks(None) == benchmark_names()

    def test_subset_passthrough(self):
        assert resolve_benchmarks(["a", "b"]) == ["a", "b"]

    def test_copies_input(self):
        names = ["x"]
        resolved = resolve_benchmarks(names)
        resolved.append("y")
        assert names == ["x"]


class TestPinpointsCache:
    def test_same_kwargs_same_object(self):
        clear_pinpoints_cache()
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        b = pinpoints_for("620.omnetpp_s", **QUICK)
        assert a is b

    def test_different_kwargs_different_objects(self):
        clear_pinpoints_cache()
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        b = pinpoints_for("620.omnetpp_s", slice_size=3000,
                          total_slices=140)
        assert a is not b

    def test_clear(self):
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        clear_pinpoints_cache()
        b = pinpoints_for("620.omnetpp_s", **QUICK)
        assert a is not b

    def test_dict_valued_kwargs_are_keyable(self):
        # ``--sampler stratified2:strata=4`` forwards sampler_params as
        # a dict; the in-process key must freeze it, not crash on it.
        clear_pinpoints_cache()
        a = pinpoints_for(
            "620.omnetpp_s", sampler="stratified2",
            sampler_params={"strata": 4}, **QUICK,
        )
        b = pinpoints_for(
            "620.omnetpp_s", sampler="stratified2",
            sampler_params={"strata": 4}, **QUICK,
        )
        c = pinpoints_for(
            "620.omnetpp_s", sampler="stratified2",
            sampler_params={"strata": 2}, **QUICK,
        )
        assert a is b
        assert a is not c
        assert a.selection.sampler == "stratified2"


class TestMeasurementCache:
    def test_whole_metrics_cached(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        a = measure_whole(out)
        b = measure_whole(out)
        assert a is b

    def test_config_distinguishes_entries(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        scaled = measure_whole(out)
        full = measure_whole(out, config=ALLCACHE_TABLE_I)
        assert scaled is not full
        # The full-size Table I L1D swallows the scaled working sets, so
        # its miss rate collapses (and the L3, seeing only compulsory
        # traffic, rises toward 100 %).
        assert full.miss_rates["L1D"] < scaled.miss_rates["L1D"]
        assert full.miss_rates["L3"] > scaled.miss_rates["L3"]

    def test_points_cache_keyed_on_warmup(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        cold = measure_points(out, out.regional)
        warm = measure_points(out, out.regional, with_warmup=True)
        assert cold is not warm
        assert warm.miss_rates["L3"] <= cold.miss_rates["L3"]

    def test_points_cache_keyed_on_subset(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        full = measure_points(out, out.regional)
        subset = measure_points(out, out.regional[:1])
        assert full is not subset

    def test_metrics_shapes(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        metrics = measure_whole(out)
        assert metrics.mix.shape == (4,)
        assert metrics.mix.sum() == pytest.approx(1.0)
        assert set(metrics.miss_rates) == {"L1D", "L2", "L3"}
        assert metrics.instructions > 0
        assert metrics.l3_accesses >= 0

    def test_default_config_is_scaled_table1(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        default = measure_whole(out)
        explicit = measure_whole(out, config=ALLCACHE_SIM)
        assert np.allclose(default.mix, explicit.mix)
        assert default.miss_rates == explicit.miss_rates


class TestDiskTier:
    """Two-tier behaviour: memory dicts in front of the artifact store."""

    def test_metrics_survive_a_memory_clear(self, tmp_path):
        configure_cache(tmp_path / "store")
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        first = measure_whole(out)
        common._WHOLE_CACHE.clear()  # simulate a fresh process
        again = measure_whole(out)
        assert again is not first
        assert np.array_equal(again.mix, first.mix)
        assert again.miss_rates == first.miss_rates
        assert again.instructions == first.instructions
        assert again.l3_accesses == first.l3_accesses

    def test_point_metrics_survive_a_memory_clear(self, tmp_path):
        configure_cache(tmp_path / "store")
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        first = measure_points(out, out.reduced, with_warmup=True)
        common._POINTS_CACHE.clear()
        again = measure_points(out, out.reduced, with_warmup=True)
        assert again is not first
        assert again.miss_rates == first.miss_rates

    def test_pipeline_bundles_survive_a_memory_clear(self, tmp_path):
        configure_cache(tmp_path / "store")
        clear_pinpoints_cache()
        first = pinpoints_for("620.omnetpp_s", **QUICK)
        common._PINPOINTS_CACHE.clear()
        again = pinpoints_for("620.omnetpp_s", **QUICK)
        assert again is not first
        assert again.benchmark == first.benchmark
        assert again.simpoints.num_points == first.simpoints.num_points
        assert np.array_equal(
            measure_whole(again).mix, measure_whole(first).mix
        )

    def test_clear_covers_the_disk_tier(self, tmp_path):
        configure_cache(tmp_path / "store")
        store = common.get_store()
        clear_pinpoints_cache()
        pinpoints_for("620.omnetpp_s", **QUICK)
        assert store.info().total_artifacts > 0
        clear_pinpoints_cache()
        assert store.info().total_artifacts == 0

    def test_no_store_means_memory_only(self):
        configure_cache(None, enabled=False)
        assert common.get_store() is None
        clear_pinpoints_cache()
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        assert pinpoints_for("620.omnetpp_s", **QUICK) is a


class TestMeasureBenchmark:
    def test_unknown_run_type_rejected(self):
        with pytest.raises(ConfigError, match="unknown run type"):
            measure_benchmark("620.omnetpp_s", runs=("bogus",),
                              pinpoints_kwargs=QUICK)

    def test_result_shape(self):
        clear_pinpoints_cache()
        result = measure_benchmark(
            "620.omnetpp_s", runs=("whole", "reduced"),
            pinpoints_kwargs=QUICK,
        )
        assert result["benchmark"] == "620.omnetpp_s"
        assert result["num_points"] >= result["num_points_90"] >= 1
        assert result["whole"].mix.shape == (4,)
        assert set(result["reduced"].miss_rates) == {"L1D", "L2", "L3"}

    def test_map_benchmarks_preserves_input_order(self):
        clear_pinpoints_cache()
        names = ["557.xz_r", "620.omnetpp_s"]
        measured = map_benchmarks(names, runs=(), jobs=1, **QUICK)
        assert [m["benchmark"] for m in measured] == names
