"""Shared experiment plumbing: measurement caching and resolution."""

import numpy as np
import pytest

from repro.config import ALLCACHE_SIM, ALLCACHE_TABLE_I
from repro.experiments.common import (
    clear_pinpoints_cache,
    measure_points,
    measure_whole,
    pinpoints_for,
    resolve_benchmarks,
)
from repro.workloads.spec2017 import benchmark_names

from conftest import QUICK


class TestResolveBenchmarks:
    def test_default_is_full_suite(self):
        assert resolve_benchmarks(None) == benchmark_names()

    def test_subset_passthrough(self):
        assert resolve_benchmarks(["a", "b"]) == ["a", "b"]

    def test_copies_input(self):
        names = ["x"]
        resolved = resolve_benchmarks(names)
        resolved.append("y")
        assert names == ["x"]


class TestPinpointsCache:
    def test_same_kwargs_same_object(self):
        clear_pinpoints_cache()
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        b = pinpoints_for("620.omnetpp_s", **QUICK)
        assert a is b

    def test_different_kwargs_different_objects(self):
        clear_pinpoints_cache()
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        b = pinpoints_for("620.omnetpp_s", slice_size=3000,
                          total_slices=140)
        assert a is not b

    def test_clear(self):
        a = pinpoints_for("620.omnetpp_s", **QUICK)
        clear_pinpoints_cache()
        b = pinpoints_for("620.omnetpp_s", **QUICK)
        assert a is not b


class TestMeasurementCache:
    def test_whole_metrics_cached(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        a = measure_whole(out)
        b = measure_whole(out)
        assert a is b

    def test_config_distinguishes_entries(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        scaled = measure_whole(out)
        full = measure_whole(out, config=ALLCACHE_TABLE_I)
        assert scaled is not full
        # The full-size Table I L1D swallows the scaled working sets, so
        # its miss rate collapses (and the L3, seeing only compulsory
        # traffic, rises toward 100 %).
        assert full.miss_rates["L1D"] < scaled.miss_rates["L1D"]
        assert full.miss_rates["L3"] > scaled.miss_rates["L3"]

    def test_points_cache_keyed_on_warmup(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        cold = measure_points(out, out.regional)
        warm = measure_points(out, out.regional, with_warmup=True)
        assert cold is not warm
        assert warm.miss_rates["L3"] <= cold.miss_rates["L3"]

    def test_points_cache_keyed_on_subset(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        full = measure_points(out, out.regional)
        subset = measure_points(out, out.regional[:1])
        assert full is not subset

    def test_metrics_shapes(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        metrics = measure_whole(out)
        assert metrics.mix.shape == (4,)
        assert metrics.mix.sum() == pytest.approx(1.0)
        assert set(metrics.miss_rates) == {"L1D", "L2", "L3"}
        assert metrics.instructions > 0
        assert metrics.l3_accesses >= 0

    def test_default_config_is_scaled_table1(self):
        clear_pinpoints_cache()
        out = pinpoints_for("620.omnetpp_s", **QUICK)
        default = measure_whole(out)
        explicit = measure_whole(out, config=ALLCACHE_SIM)
        assert np.allclose(default.mix, explicit.mix)
        assert default.miss_rates == explicit.miss_rates
