"""Full-size integration checks of the paper's headline claims.

These run the default (calibrated) configuration.  The Table II check
covers the entire 29-benchmark suite; the others use single benchmarks at
full size so the suite stays fast enough for routine runs.
"""

import numpy as np
import pytest

from repro.experiments.common import (
    measure_points,
    measure_whole,
    pinpoints_for,
)
from repro.pinpoints import run_pinpoints
from repro.simpoint import reduce_to_percentile
from repro.workloads.spec2017 import benchmark_names, get_descriptor


@pytest.mark.slow
class TestTableTwoFullSuite:
    def test_all_29_benchmarks_match_published_counts(self):
        mismatches = []
        for name in benchmark_names():
            descriptor = get_descriptor(name)
            out = pinpoints_for(name)
            if (out.simpoints.k != descriptor.num_phases
                    or len(out.reduced) != descriptor.num_90pct):
                mismatches.append(
                    (name, out.simpoints.k, descriptor.num_phases,
                     len(out.reduced), descriptor.num_90pct)
                )
        assert mismatches == []


class TestHeadlineClaims:
    """Single-benchmark, full-size versions of the paper's key numbers."""

    def test_instruction_mix_error_below_one_percent(self):
        out = pinpoints_for("623.xalancbmk_s")
        whole = measure_whole(out)
        regional = measure_points(out, out.regional)
        reduced = measure_points(out, out.reduced)
        assert np.abs(regional.mix - whole.mix).max() * 100 < 1.0
        assert np.abs(reduced.mix - whole.mix).max() * 100 < 1.0

    def test_l3_cold_error_large_and_warmup_recovers(self):
        out = pinpoints_for("505.mcf_r")
        whole = measure_whole(out)
        cold = measure_points(out, out.regional)
        warm = measure_points(out, out.regional, with_warmup=True)
        cold_delta = cold.miss_rates["L3"] - whole.miss_rates["L3"]
        warm_delta = warm.miss_rates["L3"] - whole.miss_rates["L3"]
        assert cold_delta > 0.10          # the paper's +25 pp effect class
        assert warm_delta < cold_delta / 2  # warmup recovers most of it

    def test_l1d_error_negligible(self):
        out = pinpoints_for("505.mcf_r")
        whole = measure_whole(out)
        cold = measure_points(out, out.regional)
        assert abs(cold.miss_rates["L1D"] - whole.miss_rates["L1D"]) < 0.01

    def test_reduced_points_cover_ninety_percent(self):
        out = pinpoints_for("541.leela_r")
        descriptor = get_descriptor("541.leela_r")
        reduced = reduce_to_percentile(out.simpoints.points)
        assert len(reduced) == descriptor.num_90pct
        assert sum(p.weight for p in reduced) >= 0.9

    def test_replay_determinism_whole_vs_regional(self):
        out = pinpoints_for("541.leela_r")
        pinball = out.regional[0]
        direct = out.program.generate_slice(pinball.region_start)
        replayed = next(iter(pinball.replay_slices(out.program)))
        assert np.array_equal(direct.mem_lines, replayed.mem_lines)
        assert direct.instruction_count == replayed.instruction_count
