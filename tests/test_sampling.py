"""Baseline samplers and the strategy-comparison experiment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimPointError
from repro.experiments.baselines import run_baselines
from repro.sampling import (
    prefix_sample,
    random_sample,
    stratified_sample,
    systematic_sample,
)

from conftest import QUICK


class TestSamplers:
    @pytest.mark.parametrize(
        "sampler",
        [random_sample, stratified_sample,
         lambda n, k: systematic_sample(n, k),
         lambda n, k: prefix_sample(n, k)],
        ids=["random", "stratified", "systematic", "prefix"],
    )
    def test_basic_contract(self, sampler):
        try:
            points = sampler(100, 10)
        except TypeError:
            points = sampler(100, 10)
        assert len(points) == 10
        indices = [p.slice_index for p in points]
        assert len(set(indices)) == 10
        assert all(0 <= i < 100 for i in indices)
        assert sum(p.weight for p in points) == pytest.approx(1.0)

    def test_random_deterministic_per_seed(self):
        a = random_sample(50, 5, seed=3)
        b = random_sample(50, 5, seed=3)
        c = random_sample(50, 5, seed=4)
        assert [p.slice_index for p in a] == [p.slice_index for p in b]
        assert [p.slice_index for p in a] != [p.slice_index for p in c]

    def test_systematic_spacing(self):
        points = systematic_sample(100, 10)
        indices = [p.slice_index for p in points]
        gaps = np.diff(indices)
        assert (gaps == 10).all()

    def test_systematic_offset(self):
        points = systematic_sample(100, 10, offset=3)
        assert points[0].slice_index == 3

    def test_systematic_rejects_negative_offset(self):
        with pytest.raises(SimPointError):
            systematic_sample(100, 10, offset=-1)

    def test_stratified_one_per_window(self):
        points = stratified_sample(100, 10, seed=0)
        for rank, point in enumerate(points):
            assert 10 * rank <= point.slice_index < 10 * (rank + 1)

    def test_prefix_is_the_prefix(self):
        points = prefix_sample(100, 4)
        assert [p.slice_index for p in points] == [0, 1, 2, 3]

    def test_select_all(self):
        points = systematic_sample(10, 10)
        assert [p.slice_index for p in points] == list(range(10))

    @pytest.mark.parametrize("sampler", [random_sample, prefix_sample])
    def test_rejects_bad_budget(self, sampler):
        with pytest.raises(SimPointError):
            sampler(10, 0)
        with pytest.raises(SimPointError):
            sampler(10, 11)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 300), frac=st.floats(0.01, 1.0),
           seed=st.integers(0, 50))
    def test_property_all_samplers_valid(self, n, frac, seed):
        k = max(1, min(n, int(round(frac * n))))
        for points in (
            random_sample(n, k, seed=seed),
            systematic_sample(n, k, offset=seed % max(1, n)),
            stratified_sample(n, k, seed=seed),
            prefix_sample(n, k),
        ):
            indices = [p.slice_index for p in points]
            assert len(points) == k
            assert len(set(indices)) == k
            assert all(0 <= i < n for i in indices)


class TestBaselinesExperiment:
    def test_simpoint_beats_prefix(self):
        result = run_baselines(["557.xz_r", "620.omnetpp_s"], **QUICK)
        assert result.average_mix_error("simpoint") < \
            result.average_mix_error("prefix")

    def test_all_strategies_reported(self):
        result = run_baselines(["620.omnetpp_s"], **QUICK)
        row = result.rows[0]
        assert set(row.mix_error_pp) == {
            "simpoint", "random", "systematic", "stratified", "prefix",
        }
        assert row.budget >= 1

    def test_render(self):
        from repro.experiments.baselines import render_baselines

        text = render_baselines(run_baselines(["620.omnetpp_s"], **QUICK))
        assert "prefix" in text and "simpoint" in text
