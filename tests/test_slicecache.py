"""The slice-trace memo: transparent, bounded, bit-identical."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConfigError
from repro.workloads import slicecache
from repro.workloads.slicecache import SliceTraceCache
from repro.workloads.spec2017 import build_program


@pytest.fixture(autouse=True)
def _fresh_memo(monkeypatch):
    """Each test re-reads the budget env into a fresh memo."""
    slicecache.reset_slice_cache()
    yield
    slicecache.reset_slice_cache()


def test_repeat_generation_is_a_hit_returning_the_same_trace():
    program = build_program("505.mcf_r", slice_size=3000, total_slices=120)
    recorder = telemetry.TraceRecorder()
    with telemetry.using_recorder(recorder):
        first = program.generate_slice(5)
        second = program.generate_slice(5)
    assert second is first
    counters = recorder.metrics.counters
    assert counters.get("slice.cache.miss", 0) == 1
    assert counters.get("slice.cache.hit", 0) == 1


def test_equal_content_shares_entries_name_does_not_matter():
    kwargs = dict(slice_size=3000, total_slices=120)
    a = build_program("505.mcf_r", **kwargs)
    b = build_program("505.mcf_r", **kwargs)
    assert a is not b
    assert b.generate_slice(3) is a.generate_slice(3)


def test_different_seeds_do_not_collide():
    a = build_program("505.mcf_r", slice_size=3000, total_slices=120)
    b = build_program("557.xz_r", slice_size=3000, total_slices=120)
    assert a._trace_key != b._trace_key
    assert b.generate_slice(3) is not a.generate_slice(3)


def test_disabled_memo_regenerates_bit_identically(monkeypatch):
    program = build_program("505.mcf_r", slice_size=3000, total_slices=120)
    cached = program.generate_slice(7)
    monkeypatch.setenv("REPRO_SLICE_CACHE_MB", "0")
    slicecache.reset_slice_cache()
    assert slicecache.get_slice_cache() is None
    fresh = program.generate_slice(7)
    assert fresh is not cached
    for field in ("block_counts", "class_counts", "mem_lines",
                  "mem_is_write", "ifetch_lines"):
        np.testing.assert_array_equal(
            getattr(fresh, field), getattr(cached, field)
        )
    assert fresh.instruction_count == cached.instruction_count


def test_cached_arrays_are_frozen():
    program = build_program("505.mcf_r", slice_size=3000, total_slices=120)
    trace = program.generate_slice(0)
    with pytest.raises(ValueError):
        trace.mem_lines[0] = 123


def test_lru_eviction_respects_budget():
    cache = SliceTraceCache(budget_bytes=1)  # below any real trace
    program = build_program("505.mcf_r", slice_size=3000, total_slices=120)
    trace = program.generate_slice(1)
    cache.put(("k", 1), trace)  # oversize: silently not cached
    assert len(cache) == 0 and cache.used_bytes == 0

    program2 = build_program("505.mcf_r", slice_size=3000, total_slices=120)
    traces = [program2.generate_slice(i) for i in range(6)]
    size = sum(
        getattr(traces[0], f).nbytes
        for f in ("block_counts", "class_counts", "mem_lines",
                  "mem_is_write", "ifetch_lines")
    )
    bounded = SliceTraceCache(budget_bytes=3 * size + size // 2)
    for i, t in enumerate(traces):
        bounded.put(("k", i), t)
    assert len(bounded) <= 4
    assert bounded.used_bytes <= bounded.budget_bytes
    # Most-recent entries survive; the oldest were evicted.
    assert bounded.get(("k", 5)) is traces[5]
    assert bounded.get(("k", 0)) is None


def test_invalid_budget_env_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SLICE_CACHE_MB", "lots")
    slicecache.reset_slice_cache()
    with pytest.raises(ConfigError):
        slicecache.get_slice_cache()
    monkeypatch.setenv("REPRO_SLICE_CACHE_MB", "-3")
    slicecache.reset_slice_cache()
    with pytest.raises(ConfigError):
        slicecache.get_slice_cache()
