"""Double-run warming, confidence intervals, and pinball archives."""

import numpy as np
import pytest

from repro.cache.warming import (
    compare_warming_strategies,
    measure_points_double_run,
)
from repro.errors import PinballError, SimulationError
from repro.experiments.common import measure_points, measure_whole
from repro.pinball import PinballArchive
from repro.stats.confidence import (
    ConfidenceInterval,
    jackknife_interval,
    required_sample_size,
)


class TestDoubleRunWarming:
    def test_double_run_removes_cold_misses(self, quick_pinpoints):
        out = quick_pinpoints
        cold = measure_points(out, out.regional)
        double = measure_points_double_run(out, out.regional)
        assert double.miss_rates["L3"] < cold.miss_rates["L3"]
        assert double.miss_rates["L2"] <= cold.miss_rates["L2"] + 1e-9

    def test_mix_unaffected_by_warming(self, quick_pinpoints):
        out = quick_pinpoints
        cold = measure_points(out, out.regional)
        double = measure_points_double_run(out, out.regional)
        assert np.allclose(cold.mix, double.mix)

    def test_more_passes_never_colder(self, quick_pinpoints):
        out = quick_pinpoints
        two = measure_points_double_run(out, out.regional, passes=2)
        three = measure_points_double_run(out, out.regional, passes=3)
        assert three.miss_rates["L3"] <= two.miss_rates["L3"] + 1e-9

    def test_rejects_single_pass(self, quick_pinpoints):
        with pytest.raises(SimulationError):
            measure_points_double_run(
                quick_pinpoints, quick_pinpoints.regional, passes=1
            )

    def test_strategy_comparison(self, quick_pinpoints):
        deltas = compare_warming_strategies(quick_pinpoints)
        assert set(deltas) == {"cold", "prefix", "double-run"}
        # Both mitigations beat cold replay on the LLC.
        assert deltas["prefix"]["L3"] < deltas["cold"]["L3"]
        assert deltas["double-run"]["L3"] < deltas["cold"]["L3"]


class TestJackknife:
    def test_interval_contains_estimate(self):
        interval = jackknife_interval([1.0, 1.2, 0.9, 1.1], [4, 3, 2, 1])
        assert interval.low <= interval.estimate <= interval.high
        assert interval.confidence == 0.95

    def test_degenerate_single_point(self):
        interval = jackknife_interval([2.0], [1.0])
        assert interval.low == interval.high == interval.estimate == 2.0

    def test_identical_values_zero_width(self):
        interval = jackknife_interval([3.0, 3.0, 3.0], [1, 2, 3])
        assert interval.half_width == pytest.approx(0.0, abs=1e-12)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 1.4, 0.8, 1.2, 0.9]
        weights = [1, 1, 1, 1, 1]
        narrow = jackknife_interval(values, weights, confidence=0.80)
        wide = jackknife_interval(values, weights, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_contains(self):
        interval = ConfidenceInterval(1.0, 0.8, 1.2, 0.95)
        assert interval.contains(1.0)
        assert not interval.contains(1.5)

    def test_noisier_values_wider_interval(self):
        weights = [1] * 6
        calm = jackknife_interval([1.0, 1.01, 0.99, 1.0, 1.02, 0.98], weights)
        noisy = jackknife_interval([0.5, 1.5, 0.7, 1.3, 0.4, 1.6], weights)
        assert noisy.half_width > calm.half_width

    def test_validation(self):
        with pytest.raises(SimulationError):
            jackknife_interval([], [])
        with pytest.raises(SimulationError):
            jackknife_interval([1.0, 2.0], [1.0])
        with pytest.raises(SimulationError):
            jackknife_interval([1.0, 2.0], [1, 1], confidence=1.0)

    def test_covers_true_mean_on_synthetic_data(self, rng):
        # Sanity: intervals from noisy samples around 5.0 usually cover it.
        covered = 0
        for trial in range(30):
            values = 5.0 + rng.normal(0, 0.5, size=12)
            interval = jackknife_interval(values, np.ones(12))
            covered += interval.contains(5.0)
        assert covered >= 24  # ~95% nominal; allow slack


class TestRequiredSampleSize:
    def test_basic(self):
        n = required_sample_size([1.0, 1.2, 0.8, 1.1, 0.9], 0.05)
        assert n > 1

    def test_tighter_target_needs_more_samples(self):
        pilot = [1.0, 1.3, 0.7, 1.2, 0.8]
        assert required_sample_size(pilot, 0.01) > \
            required_sample_size(pilot, 0.1)

    def test_validation(self):
        with pytest.raises(SimulationError):
            required_sample_size([1.0], 0.05)
        with pytest.raises(SimulationError):
            required_sample_size([1.0, 2.0], 0.0)
        with pytest.raises(SimulationError):
            required_sample_size([-1.0, 1.0], 0.05)


class TestPinballArchive:
    def test_roundtrip(self, quick_pinpoints, tmp_path):
        archive = PinballArchive.from_pipeline(quick_pinpoints)
        directory = archive.save(tmp_path / "arch")
        loaded = PinballArchive.load(directory)
        assert loaded.benchmark == quick_pinpoints.benchmark
        assert len(loaded.regional) == len(quick_pinpoints.regional)
        assert loaded.total_weight == pytest.approx(archive.total_weight)

    def test_regional_sorted_by_weight(self, quick_pinpoints, tmp_path):
        archive = PinballArchive.from_pipeline(quick_pinpoints)
        weights = [p.weight for p in archive.regional]
        assert weights == sorted(weights, reverse=True)

    def test_loaded_pinballs_replayable(self, quick_pinpoints, tmp_path):
        archive = PinballArchive.from_pipeline(quick_pinpoints)
        loaded = PinballArchive.load(archive.save(tmp_path / "arch"))
        trace = next(iter(loaded.regional[0].replay_slices()))
        original = quick_pinpoints.program.generate_slice(
            loaded.regional[0].region_start
        )
        assert np.array_equal(trace.mem_lines, original.mem_lines)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PinballError):
            PinballArchive.load(tmp_path / "nothing")

    def test_bad_manifest_version(self, quick_pinpoints, tmp_path):
        import json

        directory = PinballArchive.from_pipeline(quick_pinpoints).save(
            tmp_path / "arch"
        )
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["manifest_version"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PinballError):
            PinballArchive.load(directory)

    def test_region_count_mismatch(self, quick_pinpoints, tmp_path):
        import json

        directory = PinballArchive.from_pipeline(quick_pinpoints).save(
            tmp_path / "arch"
        )
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["num_regions"] = 999
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PinballError):
            PinballArchive.load(directory)


class TestCliArchiveCommands:
    def test_checkpoint_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "omnetpp"
        assert main(["checkpoint", "620.omnetpp_s", "--out",
                     str(out_dir)]) == 0
        assert "archived 620.omnetpp_s" in capsys.readouterr().out
        assert main(["replay-archive", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "replayed 620.omnetpp_s" in out
        assert "L3 miss rate" in out

    def test_replay_missing_archive(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay-archive", str(tmp_path / "missing")]) == 2
        assert "replay failed" in capsys.readouterr().err

    def test_checkpoint_unknown_benchmark(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["checkpoint", "999.bogus", "--out",
                     str(tmp_path / "x")]) == 2
        assert "checkpoint failed" in capsys.readouterr().err
