"""Sampler-registry invariants, goldens, and the refactor's byte-identity.

Three layers of protection:

* property tests every registered sampler must pass (weights sum to 1,
  indices in range / strictly ascending, same-seed determinism) — the
  ``sampler-matrix`` CI job runs exactly these over the whole registry,
* differential tests against pre-refactor goldens
  (``tests/goldens/sampler_goldens.json``): migrated SimPoint and the
  classic baselines must reproduce the exact points the ad-hoc code
  selected before the registry existed,
* regression tests for the ``cluster_size`` truncation fix and the
  registry plumbing (parsing, feature gating, contract enforcement).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigError, SimPointError
from repro.pin.tools.mav import MAV_DIM
from repro.pinpoints.pipeline import run_pinpoints
from repro.sampling import (
    SliceFeatures,
    all_samplers,
    get_sampler,
    parse_sampler_arg,
    prefix_sample,
    random_sample,
    run_sampler,
    sampler_names,
    stratified_sample,
    systematic_sample,
)

GOLDENS = json.loads(
    (Path(__file__).parent / "goldens" / "sampler_goldens.json").read_text()
)

QUICK = dict(slice_size=3000, total_slices=120)


def make_features(n=64, blocks=32, seed=11, with_mav=True):
    rng = np.random.default_rng(seed)
    bbv = np.abs(rng.standard_normal((n, blocks)))
    bbv /= bbv.sum(axis=1, keepdims=True)
    mav = rng.random((n, MAV_DIM)) if with_mav else None
    return SliceFeatures(
        benchmark="620.omnetpp_s", slice_size=3000, seed=seed,
        bbv=bbv, slice_indices=np.arange(n), mav=mav,
    )


def point_tuples(points):
    return [(p.slice_index, p.cluster, p.weight, p.cluster_size)
            for p in points]


class TestRegistryInvariants:
    """Every registered sampler honours the output contract."""

    @pytest.fixture(scope="class")
    def features(self):
        return make_features()

    @pytest.mark.parametrize("name", sampler_names())
    @pytest.mark.parametrize("budget", [1, 5, 16])
    def test_contract(self, features, name, budget):
        result = run_sampler(name, features, budget)
        indices = [p.slice_index for p in result.points]
        assert result.num_points >= 1
        assert result.num_points <= budget
        assert all(0 <= i < features.num_slices for i in indices)
        assert indices == sorted(set(indices))
        assert sum(p.weight for p in result.points) == pytest.approx(1.0)
        assert all(p.weight > 0 for p in result.points)

    @pytest.mark.parametrize("name", sampler_names())
    def test_same_seed_same_output(self, features, name):
        first = run_sampler(name, features, 8)
        second = run_sampler(name, features, 8)
        assert point_tuples(first.points) == point_tuples(second.points)

    @pytest.mark.parametrize("name", sampler_names())
    def test_replay_points_is_permutation(self, features, name):
        result = run_sampler(name, features, 8)
        assert sorted(point_tuples(result.replay_points())) == sorted(
            point_tuples(result.points)
        )

    def test_budget_clamped_to_slice_count(self, features):
        result = run_sampler("random", features, features.num_slices + 50)
        assert result.num_points == features.num_slices

    def test_budget_must_be_positive(self, features):
        with pytest.raises(SimPointError):
            run_sampler("random", features, 0)

    def test_specs_are_documented(self):
        for spec in all_samplers():
            assert spec.summary
            assert spec.paper_ref
            for param in spec.params:
                assert param.help


class TestGoldens:
    """The migrated samplers reproduce pre-refactor selections exactly."""

    @pytest.mark.parametrize("bench", sorted(GOLDENS["simpoint"]))
    def test_simpoint_byte_identical(self, bench):
        golden = GOLDENS["simpoint"][bench]
        out = run_pinpoints(bench, **golden["quick"])
        assert out.simpoints.k == golden["k"]
        got = [
            {
                "slice_index": p.slice_index,
                "cluster": p.cluster,
                "weight": p.weight,
                "cluster_size": p.cluster_size,
            }
            # Golden order is the legacy cluster order, which is also
            # the replay order the regional pinballs are logged in.
            for p in out.selection.replay_points()
        ]
        assert got == golden["points"]
        assert [rp.region_start for rp in out.regional] == [
            p["slice_index"] for p in golden["points"]
        ]

    @pytest.mark.parametrize("case", range(len(GOLDENS["baselines"])))
    def test_baselines_match_goldens(self, case):
        golden = GOLDENS["baselines"][case]
        n, k, seed = golden["num_slices"], golden["num_points"], golden["seed"]
        produced = {
            "random": random_sample(n, k, seed=seed),
            "systematic": systematic_sample(n, k, offset=seed % n),
            "stratified": stratified_sample(n, k, seed=seed),
            "prefix": prefix_sample(n, k),
        }
        for strategy, points in produced.items():
            got = [
                {"slice_index": p.slice_index, "cluster": p.cluster,
                 "weight": p.weight}
                for p in points
            ]
            assert got == golden[strategy], strategy

    @pytest.mark.parametrize("strategy", ["random", "stratified"])
    def test_registry_rng_matches_seed_path(self, strategy):
        """ctx.rng dispatch draws identically to the legacy seed path."""
        golden = GOLDENS["baselines"][0]
        n, k, seed = golden["num_slices"], golden["num_points"], golden["seed"]
        features = make_features(n=n, seed=seed, with_mav=False)
        result = run_sampler(strategy, features, k)
        got = [
            {"slice_index": p.slice_index, "cluster": p.cluster,
             "weight": p.weight}
            for p in result.points
        ]
        assert got == golden[strategy]


class TestClusterSizeFix:
    """Baseline cluster sizes tile the execution exactly (REP bug fix)."""

    @pytest.mark.parametrize("n,k", [(120, 7), (100, 10), (33, 4), (7, 7),
                                     (64, 5), (101, 3)])
    def test_sizes_sum_to_num_slices(self, n, k):
        for points in (
            random_sample(n, k, seed=1),
            systematic_sample(n, k),
            stratified_sample(n, k, seed=1),
            prefix_sample(n, k),
        ):
            sizes = [p.cluster_size for p in points]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1

    def test_remainder_goes_to_lowest_ranks(self):
        points = prefix_sample(10, 3)
        assert [p.cluster_size for p in points] == [4, 3, 3]


class TestParsing:
    def test_plain_name(self):
        assert parse_sampler_arg("simpoint") == ("simpoint", {})

    def test_params_coerced(self):
        name, params = parse_sampler_arg("ranked:set_size=7,repeats=1")
        assert name == "ranked"
        assert params == {"set_size": 7, "repeats": 1}
        assert isinstance(params["set_size"], int)

    def test_unknown_sampler(self):
        with pytest.raises(ConfigError, match="unknown sampler"):
            parse_sampler_arg("bogus")

    def test_unknown_param(self):
        with pytest.raises(ConfigError, match="no parameter"):
            parse_sampler_arg("random:bogus=1")

    def test_bad_value(self):
        with pytest.raises(ConfigError, match="expects int"):
            parse_sampler_arg("ranked:set_size=abc")

    def test_malformed_item(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_sampler_arg("ranked:set_size")


class TestFeatureGating:
    def test_mav_requires_memory_features(self):
        features = make_features(with_mav=False)
        with pytest.raises(SimPointError, match="memory access vectors"):
            run_sampler("mav", features, 4)

    def test_mav_spec_declares_requirement(self):
        assert get_sampler("mav").requires == ("bbv", "mav")

    def test_pipeline_collects_mav_on_demand(self):
        out = run_pinpoints("620.omnetpp_s", sampler="mav", **QUICK)
        assert out.features.mav is not None
        assert out.features.mav.shape == (120, MAV_DIM)
        assert out.num_points == len(out.regional)

    def test_default_pipeline_skips_mav(self):
        out = run_pinpoints("620.omnetpp_s", **QUICK)
        assert out.features.mav is None


class TestPipelineAcrossSamplers:
    """Every sampler flows through the same pinball machinery."""

    @pytest.mark.parametrize(
        "name", ["random", "systematic", "stratified2", "ranked"]
    )
    def test_non_clustering_sampler_end_to_end(self, name):
        out = run_pinpoints(
            "620.omnetpp_s", max_k=6, sampler=name, **QUICK
        )
        assert out.selection.sampler == name
        assert len(out.regional) == out.num_points
        starts = sorted(rp.region_start for rp in out.regional)
        assert starts == [p.slice_index for p in out.selection.points]
        with pytest.raises(SimPointError, match="not.*clustering"):
            out.simpoints

    def test_sampler_params_reach_the_sampler(self):
        out = run_pinpoints(
            "620.omnetpp_s", max_k=6, sampler="systematic",
            sampler_params={"offset": 3}, **QUICK
        )
        assert out.selection.points[0].slice_index == 3
