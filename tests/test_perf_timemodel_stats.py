"""Native machine (perf), execution-time model, and stats helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.perf import NativeMachine, PerfCounters
from repro.pinball.pinball import ProgramRecipe, RegionalPinball
from repro.stats import (
    max_abs_percentage_points,
    mean_abs_percentage_points,
    percent_relative_error,
    weighted_average,
    weighted_mix,
)
from repro.timemodel import (
    LOGGER_SLOWDOWN,
    REPLAY_MIPS,
    logging_cost,
    reduced_regional_run_cost,
    regional_run_cost,
    whole_run_cost,
)


class TestNativeMachine:
    def test_counters(self, small_program):
        counters = NativeMachine().run(small_program)
        assert isinstance(counters, PerfCounters)
        assert counters.instructions > 0
        assert counters.cpu_cycles > 0
        assert 0.2 < counters.cpi < 10.0

    def test_nondeterminism_across_runs(self, small_program):
        machine = NativeMachine()
        a = machine.run(small_program, run_id=0)
        b = machine.run(small_program, run_id=1)
        assert a.instructions == b.instructions
        assert a.cpu_cycles != b.cpu_cycles
        # But the jitter is small (sub-percent scale).
        assert abs(a.cpu_cycles - b.cpu_cycles) / a.cpu_cycles < 0.1

    def test_same_run_id_reproducible(self, small_program):
        machine = NativeMachine()
        a = machine.run(small_program, run_id=3)
        b = machine.run(small_program, run_id=3)
        assert a.cpu_cycles == b.cpu_cycles

    def test_zero_noise_supported(self, small_program):
        machine = NativeMachine(noise_sigma=0.0)
        a = machine.run(small_program, run_id=0)
        b = machine.run(small_program, run_id=1)
        assert a.cpu_cycles == b.cpu_cycles

    def test_rejects_negative_noise(self):
        with pytest.raises(SimulationError):
            NativeMachine(noise_sigma=-0.1)

    def test_cpi_undefined_without_instructions(self):
        with pytest.raises(SimulationError):
            _ = PerfCounters(instructions=0, cpu_cycles=10.0).cpi


def regional(start, warmup=17, weight=0.5, total=600):
    recipe = ProgramRecipe("620.omnetpp_s", 30000, total)
    return RegionalPinball(recipe=recipe, region_start=start,
                           region_length=1, weight=weight,
                           warmup_slices=warmup)


class TestTimeModel:
    def test_whole_run_cost_uses_whole_mips(self):
        cost = whole_run_cost(1e12)
        assert cost.instructions == 1e12
        assert cost.seconds == pytest.approx(1e12 / REPLAY_MIPS["whole"])

    def test_paper_suite_average_time(self):
        # 6 873.9 B instructions -> ~213 hours (the paper's average).
        cost = whole_run_cost(6_873.9e9)
        assert cost.hours == pytest.approx(213.2, rel=0.01)

    def test_regional_cost_includes_warmup(self):
        pinballs = [regional(100), regional(200)]
        cost = regional_run_cost(pinballs)
        # 2 x (17 + 1) slices x 30 M = 1.08 B instructions.
        assert cost.instructions == pytest.approx(2 * 18 * 30e6)

    def test_warmup_truncation_reduces_cost(self):
        truncated = regional_run_cost([regional(3)])
        full = regional_run_cost([regional(100)])
        assert truncated.instructions < full.instructions

    def test_reduction_ratios_match_paper_scale(self):
        # ~20 points of ~530 M instructions vs a 6 873.9 B whole run
        # must land in the paper's ~650x instruction-reduction regime.
        pinballs = [regional(50 + 25 * i, weight=0.05) for i in range(20)]
        whole = whole_run_cost(6_873.9e9)
        reg = regional_run_cost(pinballs)
        assert 550 < whole.instructions / reg.instructions < 750
        assert 600 < whole.seconds / reg.seconds < 850

    def test_reduced_uses_reduced_mips(self):
        pinballs = [regional(100)]
        reduced = reduced_regional_run_cost(pinballs)
        assert reduced.seconds == pytest.approx(
            reduced.instructions / REPLAY_MIPS["reduced"]
        )

    def test_logging_cost_slowdown(self):
        cost = logging_cost(1e12)
        native_seconds = 1e12 / 1e9
        assert cost.seconds == pytest.approx(native_seconds * LOGGER_SLOWDOWN)

    def test_rejects_empty_pinballs(self):
        with pytest.raises(SimulationError):
            regional_run_cost([])

    def test_rejects_non_positive_instructions(self):
        with pytest.raises(SimulationError):
            whole_run_cost(0)

    def test_unit_conversions(self):
        cost = whole_run_cost(REPLAY_MIPS["whole"] * 7200)
        assert cost.hours == pytest.approx(2.0)
        assert cost.minutes == pytest.approx(120.0)


class TestStats:
    def test_weighted_average_renormalizes(self):
        assert weighted_average([1.0, 3.0], [0.45, 0.45]) == pytest.approx(2.0)

    def test_weighted_average_basic(self):
        assert weighted_average([2.0, 4.0], [0.75, 0.25]) == pytest.approx(2.5)

    def test_weighted_mix(self):
        mixes = [np.array([1.0, 0, 0, 0]), np.array([0, 1.0, 0, 0])]
        combined = weighted_mix(mixes, [0.5, 0.5])
        assert combined[0] == pytest.approx(0.5)
        assert combined.sum() == pytest.approx(1.0)

    def test_weighted_mix_reduced_weights(self):
        mixes = [np.array([0.6, 0.3, 0.08, 0.02])] * 3
        combined = weighted_mix(mixes, [0.5, 0.3, 0.1])
        assert np.allclose(combined, mixes[0])

    def test_percentage_point_errors(self):
        a = np.array([0.50, 0.30, 0.15, 0.05])
        b = np.array([0.48, 0.33, 0.14, 0.05])
        assert max_abs_percentage_points(a, b) == pytest.approx(3.0)
        assert mean_abs_percentage_points(a, b) == pytest.approx(1.5)

    def test_relative_error(self):
        assert percent_relative_error(1.1, 1.0) == pytest.approx(10.0)
        with pytest.raises(SimulationError):
            percent_relative_error(1.0, 0.0)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(SimulationError):
            weighted_average([1.0], [0.5, 0.5])
        with pytest.raises(SimulationError):
            weighted_mix([np.ones(4)], [0.5, 0.5])
        with pytest.raises(SimulationError):
            max_abs_percentage_points(np.ones(3), np.ones(4))

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(SimulationError):
            weighted_average([1.0, 2.0], [0.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
        seed=st.integers(0, 1000),
    )
    def test_property_weighted_average_bounds(self, values, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.01, 1.0, size=len(values))
        avg = weighted_average(values, weights)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9
