"""Store hardening: checksum envelopes, quarantine, doctor, injection."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.parallel import ArtifactStore, ENVELOPE_TAG
from repro.telemetry.recorder import TraceRecorder, using_recorder

pytestmark = pytest.mark.resilience


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store", version="test-1")


@pytest.fixture()
def injecting_store(tmp_path):
    return ArtifactStore(tmp_path / "store", version="test-1",
                         inject_faults=True)


def counter_total(rec: TraceRecorder, name: str) -> int:
    return sum(
        value for key, value in rec.metrics.counters.items()
        if key == name or key.startswith(name + "{")
    )


class TestEnvelopes:
    def test_json_artifact_is_enveloped_on_disk(self, store):
        path = store.put_json("metrics", {"k": 1}, {"rate": 0.5})
        envelope = json.loads(path.read_text())
        assert envelope["schema"] == ENVELOPE_TAG
        assert envelope["payload"] == {"rate": 0.5}
        assert len(envelope["sha256"]) == 64

    def test_pickle_artifact_carries_a_header_line(self, store):
        path = store.put_pickle("pinpoints", {"k": 1}, [1, 2, 3])
        header = path.read_bytes().split(b"\n", 1)[0].split(b" ")
        assert header[0] == ENVELOPE_TAG.encode()
        assert len(header) == 3

    def test_flipped_payload_bit_is_detected(self, store):
        path = store.put_json("metrics", {"k": 1}, {"rate": 0.5})
        raw = bytearray(path.read_bytes())
        # Flip one character inside the payload without breaking JSON:
        # 0.5 -> 0.7 still parses, but the digest no longer matches.
        raw = bytes(raw).replace(b"0.5", b"0.7")
        path.write_bytes(raw)
        assert store.get_json("metrics", {"k": 1}) is None

    def test_pre_envelope_artifact_reads_as_corrupt(self, store):
        # A v1-era artifact (bare JSON payload) must never be trusted.
        path = store.put_json("metrics", {"k": 1}, {"rate": 0.5})
        path.write_text('{"rate": 0.5}')
        assert store.get_json("metrics", {"k": 1}) is None


class TestQuarantine:
    def test_corrupt_read_moves_the_file_and_counts(self, store):
        path = store.put_json("metrics", {"k": 1}, {"v": 1})
        path.write_bytes(b"garbage")
        rec = TraceRecorder()
        with using_recorder(rec):
            assert store.get_json("metrics", {"k": 1}) is None
        assert not path.exists()
        quarantined = list((store.root / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [path.name]
        assert counter_total(rec, "store.corrupt") == 1

    def test_corrupt_pickle_quarantined_without_unpickling(self, store):
        path = store.put_pickle("pinpoints", {"k": 1}, [1, 2, 3])
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # torn write: length check fails
        assert store.get_pickle("pinpoints", {"k": 1}) is None
        assert not path.exists()
        assert store.info().quarantined == 1

    def test_recompute_after_quarantine_round_trips(self, store):
        path = store.put_json("metrics", {"k": 1}, {"v": 1})
        path.write_bytes(b"garbage")
        assert store.get_json("metrics", {"k": 1}) is None
        store.put_json("metrics", {"k": 1}, {"v": 2})
        assert store.get_json("metrics", {"k": 1}) == {"v": 2}

    def test_info_reports_quarantine(self, store):
        path = store.put_json("metrics", {"k": 1}, {"v": 1})
        path.write_bytes(b"garbage")
        store.get_json("metrics", {"k": 1})
        assert "cache doctor" in store.info().render()

    def test_clear_keeps_quarantine_and_journals(self, store):
        path = store.put_json("metrics", {"k": 1}, {"v": 1})
        path.write_bytes(b"garbage")
        store.get_json("metrics", {"k": 1})
        journal = store.root / "journals" / "c.jsonl"
        journal.parent.mkdir(parents=True)
        journal.write_text("{}\n")
        store.clear()
        assert store.info().total_artifacts == 0
        assert store.info().quarantined == 1
        assert journal.exists()


class TestDoctor:
    def test_scan_quarantines_corrupt_artifacts(self, store):
        good = store.put_json("metrics", {"k": 1}, {"v": 1})
        bad = store.put_json("metrics", {"k": 2}, {"v": 2})
        bad.write_bytes(b"garbage")
        report = store.doctor()
        assert report.scanned == 2
        assert report.healthy == 1
        assert report.quarantined_now == 1
        assert report.quarantine_files == 1
        assert good.exists() and not bad.exists()
        assert "newly quarantined" in report.render()

    def test_prune_empties_the_quarantine(self, store):
        bad = store.put_json("metrics", {"k": 1}, {"v": 1})
        bad.write_bytes(b"garbage")
        store.doctor()
        report = store.doctor(prune=True)
        assert report.pruned == 1
        assert store.doctor().quarantine_files == 0

    def test_clean_store_scans_healthy(self, store):
        store.put_json("metrics", {"k": 1}, {"v": 1})
        store.put_pickle("pinpoints", {"k": 1}, [1])
        report = store.doctor()
        assert report.scanned == 2 and report.healthy == 2
        assert report.quarantined_now == 0


class TestFaultInjection:
    def test_truncated_write_self_heals_on_read(
        self, injecting_store, inject_faults
    ):
        inject_faults("truncate:items=0:kinds=metrics")
        rec = TraceRecorder()
        with using_recorder(rec):
            injecting_store.put_json("metrics", {"k": 1}, {"v": 1})
            # The truncated artifact fails its checksum, quarantines,
            # and reads as a miss -- the caller recomputes.
            assert injecting_store.get_json("metrics", {"k": 1}) is None
        assert counter_total(rec, "fault.injected") == 1
        assert counter_total(rec, "store.corrupt") == 1

    def test_garbage_write_is_caught_by_the_envelope(
        self, injecting_store, inject_faults
    ):
        inject_faults("garbage:items=0:kinds=metrics")
        injecting_store.put_json("metrics", {"k": 1}, {"v": 1})
        assert injecting_store.get_json("metrics", {"k": 1}) is None

    def test_enospc_surfaces_as_store_error(
        self, injecting_store, inject_faults
    ):
        inject_faults("enospc:items=0:kinds=metrics")
        with pytest.raises(StoreError, match="ENOSPC|No space|injected"):
            injecting_store.put_json("metrics", {"k": 1}, {"v": 1})

    def test_raw_stores_are_exempt(self, store, inject_faults):
        inject_faults("truncate:items=0:kinds=metrics")
        store.put_json("metrics", {"k": 1}, {"v": 1})
        assert store.get_json("metrics", {"k": 1}) == {"v": 1}

    def test_configured_cache_opts_in(self, tmp_path):
        from repro.experiments.common import configure_cache, get_store, set_store

        previous = configure_cache(tmp_path / "store")
        try:
            assert get_store().inject_faults
        finally:
            set_store(previous)

    def test_every_clause_leaves_early_writes_clean(
        self, injecting_store, inject_faults
    ):
        inject_faults("truncate:every=3:kinds=metrics")
        for k in range(3):
            injecting_store.put_json("metrics", {"k": k}, {"v": k})
        # Ordinals 0 and 1 are clean; ordinal 2 was truncated.
        assert injecting_store.get_json("metrics", {"k": 0}) == {"v": 0}
        assert injecting_store.get_json("metrics", {"k": 1}) == {"v": 1}
        assert injecting_store.get_json("metrics", {"k": 2}) is None
