"""The declarative experiment registry and the result serialization protocol.

Contracts under test:

* every registered experiment gets a CLI subparser, and its ``trace``
  twin exposes the same experiment options;
* ``to_payload``/``from_payload`` round-trips every result type with
  render fidelity (the rendered table from a deserialized result is
  byte-identical to the live one);
* :func:`repro.experiments.registry.execute` serves a stored result
  payload instead of re-running the experiment, with ``jobs`` excluded
  from the cache key;
* empty-result aggregates raise :class:`ConfigError` instead of
  ``ZeroDivisionError``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json

import pytest

from repro.cli import _build_parser, main
from repro.errors import ConfigError
from repro.experiments import all_specs, execute, get_spec
from repro.experiments.common import configure_cache, get_store, set_store
from repro.experiments.registry import (
    RESULT_SCHEMA,
    result_from_payload,
    result_payload,
)
from repro.experiments.serialize import SerializableResult

from conftest import QUICK

B = "620.omnetpp_s"

#: Cheap runner kwargs per experiment (shared pinpoints cache keeps the
#: repeated 620.omnetpp_s QUICK pipelines nearly free).
QUICK_KWARGS = {
    "table2": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig3a": dict(benchmark="557.xz_r", maxk_values=(13,), **QUICK),
    "fig3b": dict(benchmark=B, slice_sizes_m=(15, 30)),
    "fig4": dict(benchmarks=[B], k_values=(2, 8), jobs=1, **QUICK),
    "fig5": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig6": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig7": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig8": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig9": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig10": dict(benchmarks=[B], jobs=1, **QUICK),
    "fig12": dict(benchmarks=[B], jobs=1, **QUICK),
    "baselines": dict(benchmarks=[B], jobs=1, **QUICK),
    "rate": dict(benchmarks=[B], copy_counts=(1, 2), num_slices=8,
                 jobs=1, **QUICK),
    "turnaround": dict(benchmarks=[B], jobs=1, **QUICK),
    "table2-projected": dict(benchmarks=[B, "628.pop2_s"], jobs=1, **QUICK),
    "sampler-frontier": dict(benchmarks=[B], samplers=("simpoint", "random"),
                             budgets=(2, 4), jobs=1, **QUICK),
}

SPEC_NAMES = [spec.name for spec in all_specs()]


def _subparser(parser: argparse.ArgumentParser, name: str):
    action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return action.choices[name]


def _option_strings(parser: argparse.ArgumentParser) -> set:
    return {
        s for a in parser._actions for s in a.option_strings
        if s not in ("-h", "--help")
    }


class TestRegistry:
    def test_every_experiment_registered_with_renderer(self):
        specs = all_specs()
        assert [s.name for s in specs] == SPEC_NAMES
        for spec in specs:
            assert callable(spec.runner), spec.name
            assert callable(spec.renderer), spec.name
            assert spec.paper_ref, spec.name
            assert isinstance(spec.result_type, type), spec.name

    def test_quick_kwargs_cover_every_experiment(self):
        assert set(QUICK_KWARGS) == set(SPEC_NAMES)

    def test_every_result_type_is_serializable(self):
        for spec in all_specs():
            assert issubclass(spec.result_type, SerializableResult), spec.name

    def test_get_spec_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            get_spec("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import experiment

        with pytest.raises(ConfigError, match="already registered"):
            experiment(
                "fig8", result=dict, paper_ref="dup"
            )(lambda: None)

    def test_renderer_for_unregistered_experiment_rejected(self):
        from repro.experiments.registry import renders

        with pytest.raises(ConfigError, match="not\\s+registered"):
            renders("fig99")(lambda r: "")


class TestParserGeneration:
    def test_every_experiment_builds_a_subparser(self):
        parser = _build_parser()
        for name in SPEC_NAMES:
            sub = _subparser(parser, name)
            options = _option_strings(sub)
            assert "--cache-dir" in options, name
            assert "--no-cache" in options, name
            assert "--json-out" in options, name

    def test_suite_experiments_expose_benchmarks_and_jobs(self):
        parser = _build_parser()
        for spec in all_specs():
            options = _option_strings(_subparser(parser, spec.name))
            assert ("--benchmarks" in options) == spec.supports_benchmarks
            assert ("--jobs" in options) == spec.supports_jobs
            assert ("--benchmark" in options) == (
                spec.benchmark_option is not None
            )

    def test_trace_twin_exposes_same_experiment_options(self):
        parser = _build_parser()
        trace = _subparser(parser, "trace")
        trace_only = {"--trace-out", "--events-out", "--summary-out"}
        for name in SPEC_NAMES:
            plain = _option_strings(_subparser(parser, name))
            twin = _option_strings(_subparser(trace, name))
            assert twin - trace_only == plain, name


@pytest.mark.parametrize("name", SPEC_NAMES)
def test_payload_round_trip_has_render_fidelity(name):
    spec = get_spec(name)
    result = spec.runner(**QUICK_KWARGS[name])
    envelope = result_payload(spec, result)
    assert envelope["schema"] == RESULT_SCHEMA
    assert envelope["experiment"] == name
    # Through the actual JSON codec, not just dict copies.
    restored = result_from_payload(
        spec, json.loads(json.dumps(envelope))
    )
    assert spec.renderer(restored) == spec.renderer(result)


class TestEnvelopeValidation:
    def test_wrong_experiment_rejected(self):
        fig10 = get_spec("fig10")
        table2 = get_spec("table2")
        result = fig10.runner(**QUICK_KWARGS["fig10"])
        envelope = result_payload(fig10, result)
        with pytest.raises(ConfigError, match="mismatch"):
            result_from_payload(table2, envelope)

    def test_wrong_schema_rejected(self):
        spec = get_spec("fig10")
        result = spec.runner(**QUICK_KWARGS["fig10"])
        envelope = result_payload(spec, result)
        envelope["schema"] = "repro-result-v0"
        with pytest.raises(ConfigError, match="schema mismatch"):
            result_from_payload(spec, envelope)

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError, match="JSON object"):
            result_from_payload(get_spec("fig10"), [1, 2, 3])


def _boom(**kwargs):
    raise AssertionError("runner must not re-run on a result-cache hit")


class TestExecuteCaching:
    def test_result_cache_hit_end_to_end(self, tmp_path):
        previous = configure_cache(tmp_path / "store")
        try:
            spec = get_spec("fig10")
            kwargs = QUICK_KWARGS["fig10"]
            first = execute(spec, kwargs)
            assert "result" in get_store().info().render()
            poisoned = dataclasses.replace(spec, runner=_boom)
            second = execute(poisoned, kwargs)
            assert spec.renderer(second) == spec.renderer(first)
        finally:
            set_store(previous)

    def test_jobs_excluded_from_cache_key(self, tmp_path):
        previous = configure_cache(tmp_path / "store")
        try:
            spec = get_spec("fig10")
            first = execute(spec, QUICK_KWARGS["fig10"])
            poisoned = dataclasses.replace(spec, runner=_boom)
            rekeyed = dict(QUICK_KWARGS["fig10"], jobs=4)
            second = execute(poisoned, rekeyed)
            assert spec.renderer(second) == spec.renderer(first)
        finally:
            set_store(previous)

    def test_without_store_runner_always_runs(self):
        assert get_store() is None
        spec = get_spec("fig10")
        calls = []

        def counting(**kwargs):
            calls.append(kwargs)
            return spec.runner(**kwargs)

        counted = dataclasses.replace(spec, runner=counting)
        execute(counted, QUICK_KWARGS["fig10"])
        execute(counted, QUICK_KWARGS["fig10"])
        assert len(calls) == 2

    def test_corrupt_stored_payload_falls_back_to_runner(self, tmp_path):
        previous = configure_cache(tmp_path / "store")
        try:
            spec = get_spec("fig10")
            kwargs = QUICK_KWARGS["fig10"]
            first = execute(spec, kwargs)
            from repro.experiments.registry import _result_key_params

            params = _result_key_params(spec, kwargs)
            get_store().put_json("result", params, {"schema": "garbage"})
            second = execute(spec, kwargs)
            assert spec.renderer(second) == spec.renderer(first)
            # The self-healed artifact serves the next hit again.
            third = execute(
                dataclasses.replace(spec, runner=_boom), kwargs
            )
            assert spec.renderer(third) == spec.renderer(first)
        finally:
            set_store(previous)


class TestEmptyResultGuards:
    def test_aggregates_raise_config_error(self):
        from repro.experiments.baselines import BaselineResult
        from repro.experiments.fig5 import Fig5Result
        from repro.experiments.fig7 import Fig7Result
        from repro.experiments.fig8 import Fig8Result
        from repro.experiments.fig12 import Fig12Result
        from repro.experiments.future_suite import FutureSuiteResult
        from repro.experiments.table2 import Table2Result
        from repro.experiments.turnaround import TurnaroundResult

        probes = [
            lambda: Table2Result(rows=[]).average_points,
            lambda: Fig5Result(rows=[]).instruction_reduction,
            lambda: Fig7Result(rows=[]).average_whole_mix,
            lambda: Fig8Result(rows=[]).average_delta_pp("regional", "L3"),
            lambda: Fig12Result(rows=[]).average_regional_error_pct,
            lambda: BaselineResult(rows=[]).average_mix_error("simpoint"),
            lambda: TurnaroundResult(rows=[]).average_hours("fsa"),
            lambda: FutureSuiteResult(rows=[]).average_points,
        ]
        for probe in probes:
            with pytest.raises(ConfigError, match="no rows"):
                probe()

    def test_fig9_rejects_empty_benchmark_list(self):
        from repro.experiments.fig9 import run_fig9

        with pytest.raises(ConfigError, match="at least one benchmark"):
            run_fig9(benchmarks=[], **QUICK)


class TestCliJsonExport:
    def test_json_out_writes_valid_envelope(self, tmp_path, capsys):
        out = tmp_path / "fig10.json"
        assert main(["fig10", "--benchmarks", B, "--jobs", "1",
                     "--json-out", str(out)]) == 0
        rendered = capsys.readouterr().out
        envelope = json.loads(out.read_text())
        assert envelope["schema"] == RESULT_SCHEMA
        assert envelope["experiment"] == "fig10"
        spec = get_spec("fig10")
        restored = result_from_payload(spec, envelope)
        assert spec.renderer(restored) + "\n" == rendered

    def test_report_writes_text_and_json_siblings(self, tmp_path, capsys):
        assert main(["report", "--out-dir", str(tmp_path / "out"),
                     "--experiments", "turnaround", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "turnaround.txt" in out and "turnaround.json" in out
        text = (tmp_path / "out" / "turnaround.txt").read_text()
        assert "campaign turnaround" in text
        envelope = json.loads(
            (tmp_path / "out" / "turnaround.json").read_text()
        )
        spec = get_spec("turnaround")
        restored = result_from_payload(spec, envelope)
        assert spec.renderer(restored) + "\n" == text

    def test_report_rejects_unknown_experiment(self, tmp_path, capsys):
        assert main(["report", "--out-dir", str(tmp_path),
                     "--experiments", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err
