"""Synthetic program generation: determinism, structure, statistics."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.program import STREAM_WINDOW_LINES, SyntheticProgram
from repro.workloads.schedule import PhaseSchedule

from conftest import make_phase


class TestDeterminism:
    def test_slice_replay_is_bit_identical(self, small_program):
        a = small_program.generate_slice(17)
        b = small_program.generate_slice(17)
        assert np.array_equal(a.mem_lines, b.mem_lines)
        assert np.array_equal(a.block_counts, b.block_counts)
        assert np.array_equal(a.class_counts, b.class_counts)
        assert np.array_equal(a.ifetch_lines, b.ifetch_lines)
        assert a.instruction_count == b.instruction_count

    def test_isolated_equals_in_sequence(self, small_program):
        in_sequence = list(small_program.iter_slices(10, 3))
        isolated = [small_program.generate_slice(i) for i in (10, 11, 12)]
        for a, b in zip(in_sequence, isolated):
            assert np.array_equal(a.mem_lines, b.mem_lines)

    def test_rebuilt_program_identical(self):
        phases = [make_phase(0, weight=1.0)]
        schedule = PhaseSchedule.from_counts([10], seed=3)
        a = SyntheticProgram("p", phases, schedule, 2000, seed=5)
        b = SyntheticProgram("p", phases, schedule, 2000, seed=5)
        ta, tb = a.generate_slice(4), b.generate_slice(4)
        assert np.array_equal(ta.mem_lines, tb.mem_lines)

    def test_different_slices_differ(self, small_program):
        a = small_program.generate_slice(0)
        b = small_program.generate_slice(1)
        assert not np.array_equal(a.mem_lines, b.mem_lines)


class TestStructure:
    def test_slice_count_and_phases(self, small_program):
        assert small_program.num_slices == 60
        assert small_program.num_phases == 3

    def test_phase_of_slice_matches_trace(self, small_program):
        for i in (0, 13, 42):
            trace = small_program.generate_slice(i)
            assert trace.phase_id == small_program.phase_of_slice(i)

    def test_bbvs_of_different_phases_nearly_disjoint(self, small_program):
        by_phase = {}
        for trace in small_program.iter_slices():
            by_phase.setdefault(trace.phase_id, trace)
        bbvs = [t.bbv() for t in by_phase.values()]
        # Shared blocks contribute ~5%; own blocks are disjoint.
        overlap = float(np.minimum(bbvs[0], bbvs[1]).sum())
        assert overlap < 0.15

    def test_same_phase_slices_similar(self, small_program):
        slices = [
            t for t in small_program.iter_slices() if t.phase_id == 0
        ][:2]
        d = np.abs(slices[0].bbv() - slices[1].bbv()).sum()
        # Same-phase slices differ only by multinomial noise (~360
        # entries at this slice size), far less than the near-total
        # separation between different phases.
        assert d < 0.3

    def test_instruction_count_near_target(self, small_program):
        trace = small_program.generate_slice(0)
        assert 0.8 * 2000 < trace.instruction_count < 1.25 * 2000

    def test_class_counts_near_phase_mix(self, small_program):
        trace = small_program.generate_slice(0)
        phase = small_program.phases[trace.phase_id]
        fractions = trace.class_counts / trace.class_counts.sum()
        assert np.abs(fractions - np.asarray(phase.mix)).max() < 0.08

    def test_stream_lines_unique_across_slices(self, small_program):
        # Streaming addresses never repeat between slices (compulsory).
        t0 = small_program.generate_slice(0)
        t1 = small_program.generate_slice(1)
        assert not set(t0.mem_lines.tolist()) >= set(t1.mem_lines.tolist())

    def test_mem_lines_nonnegative(self, small_program):
        trace = small_program.generate_slice(5)
        assert trace.mem_lines.min() >= 0

    def test_code_regions(self, small_program):
        regions = small_program.code_regions()
        assert len(regions) == 3
        ids = {b.block_id for r in regions for b in r.blocks}
        assert len(ids) == sum(len(r.blocks) for r in regions)

    def test_block_sizes_exposed(self, small_program):
        assert small_program.block_sizes.shape == (small_program.num_blocks,)
        assert small_program.block_sizes.min() >= 1

    def test_stream_window_bounds_stream_refs(self):
        phases = [make_phase(0, weight=1.0,
                             mem_fractions=(0.1, 0.1, 0.1, 0.1, 0.6))]
        schedule = PhaseSchedule.from_counts([4], seed=0)
        program = SyntheticProgram("s", phases, schedule, 3000, seed=1)
        trace = program.generate_slice(0)
        assert trace.memory_reference_count <= 4 * trace.instruction_count
        assert trace.mem_lines.size > 0
        # Stream refs are clipped at the window size.
        assert trace.memory_reference_count >= 1
        assert STREAM_WINDOW_LINES == 8192


class TestValidation:
    def test_rejects_out_of_range_slice(self, small_program):
        with pytest.raises(WorkloadError):
            small_program.generate_slice(60)
        with pytest.raises(WorkloadError):
            small_program.generate_slice(-1)

    def test_rejects_bad_iter_range(self, small_program):
        with pytest.raises(WorkloadError):
            list(small_program.iter_slices(50, 20))

    def test_rejects_tiny_slice_size(self):
        phases = [make_phase(0, weight=1.0)]
        schedule = PhaseSchedule.from_counts([4], seed=0)
        with pytest.raises(WorkloadError):
            SyntheticProgram("p", phases, schedule, 50, seed=0)

    def test_rejects_phase_schedule_mismatch(self):
        phases = [make_phase(0, weight=1.0)]
        schedule = PhaseSchedule.from_counts([4, 4], seed=0)
        with pytest.raises(WorkloadError):
            SyntheticProgram("p", phases, schedule, 2000, seed=0)

    def test_rejects_non_dense_phase_ids(self):
        phases = [make_phase(1, weight=1.0)]
        schedule = PhaseSchedule.from_counts([4], seed=0)
        with pytest.raises(WorkloadError):
            SyntheticProgram("p", phases, schedule, 2000, seed=0)
