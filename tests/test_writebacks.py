"""Write-back accounting across both cache simulation paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheLevel
from repro.config import CacheConfig
from repro.errors import SimulationError


def reference_writebacks(lines, writes, num_sets, assoc,
                         granularity_shift=0):
    """Straightforward dirty-LRU model to validate both paths against."""
    sets = {}
    writebacks = 0
    for line, write in zip(lines, writes):
        line = int(line) >> granularity_shift
        idx = line % num_sets
        tag = line // num_sets
        entry = sets.setdefault(idx, [])  # list of [tag, dirty]
        for slot in entry:
            if slot[0] == tag:
                entry.remove(slot)
                slot[1] = slot[1] or bool(write)
                entry.append(slot)
                break
        else:
            if len(entry) >= assoc:
                victim = entry.pop(0)
                if victim[1]:
                    writebacks += 1
            entry.append([tag, bool(write)])
    return writebacks


def level(assoc, lines=32, line_size=32):
    return CacheLevel(
        CacheConfig("T", size_bytes=lines * line_size, line_size=line_size,
                    associativity=assoc)
    )


class TestWritebackBasics:
    def test_clean_eviction_no_writeback(self):
        cache = level(assoc=1, lines=2)
        cache.access_many(np.array([0]))          # read, clean
        cache.access_many(np.array([2]))          # evicts 0 (same set)
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_counts(self):
        cache = level(assoc=1, lines=2)
        cache.access_many(np.array([0]), np.array([True]))
        cache.access_many(np.array([2]))          # evicts dirty 0
        assert cache.stats.writebacks == 1

    def test_dirty_within_single_batch(self):
        cache = level(assoc=1, lines=2)
        cache.access_many(
            np.array([0, 2, 0]), np.array([True, False, False])
        )
        # 0 written then evicted by 2 (writeback), then 2 evicted clean.
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = level(assoc=2, lines=2)  # one set, two ways
        cache.access_many(np.array([0]))                  # clean fill
        cache.access_many(np.array([0]), np.array([True]))  # dirty on hit
        cache.access_many(np.array([1, 2]))               # 0 becomes LRU, evicted
        assert cache.stats.writebacks == 1

    def test_flush_drops_dirty_silently(self):
        cache = level(assoc=1, lines=2)
        cache.access_many(np.array([0]), np.array([True]))
        cache.flush()
        cache.access_many(np.array([2]))
        assert cache.stats.writebacks == 0

    def test_install_is_clean(self):
        cache = level(assoc=1, lines=2)
        cache.access_many(np.array([0]), np.array([True]))
        cache.install(np.array([0]))   # prefetch fill overwrites dirty state
        cache.access_many(np.array([2]))
        assert cache.stats.writebacks == 0

    def test_recording_off_skips_writeback_stats(self):
        cache = level(assoc=1, lines=2)
        cache.recording = False
        cache.access_many(np.array([0, 2]), np.array([True, False]))
        assert cache.stats.writebacks == 0

    def test_misaligned_write_mask_rejected(self):
        cache = level(assoc=2)
        with pytest.raises(SimulationError):
            cache.access_many(np.array([1, 2]), np.array([True]))


class TestAgainstReference:
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_matches_reference(self, assoc, rng):
        cache = level(assoc=assoc, lines=16)
        lines = rng.integers(0, 64, size=2000)
        writes = rng.random(2000) < 0.3
        cache.access_many(lines, writes)
        expected = reference_writebacks(
            lines, writes, cache.config.num_sets, assoc
        )
        assert cache.stats.writebacks == expected

    @pytest.mark.parametrize("assoc", [1, 4])
    def test_matches_reference_across_batches(self, assoc, rng):
        cache = level(assoc=assoc, lines=16)
        lines = rng.integers(0, 48, size=1500)
        writes = rng.random(1500) < 0.4
        for lo in range(0, 1500, 137):
            cache.access_many(lines[lo:lo + 137], writes[lo:lo + 137])
        expected = reference_writebacks(
            lines, writes, cache.config.num_sets, assoc
        )
        assert cache.stats.writebacks == expected

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 31), st.booleans()),
            min_size=1, max_size=300,
        ),
        assoc_pow=st.integers(0, 2),
    )
    def test_property_matches_reference(self, data, assoc_pow):
        assoc = 2 ** assoc_pow
        cache = CacheLevel(
            CacheConfig("T", size_bytes=32 * 8 * assoc, line_size=32,
                        associativity=assoc)
        )
        lines = np.array([d[0] for d in data], dtype=np.int64)
        writes = np.array([d[1] for d in data], dtype=bool)
        cache.access_many(lines, writes)
        expected = reference_writebacks(
            lines, writes, cache.config.num_sets, assoc
        )
        assert cache.stats.writebacks == expected

    def test_writebacks_bounded_by_write_misses_plus_hits(self, rng):
        cache = level(assoc=2, lines=8)
        lines = rng.integers(0, 64, size=500)
        writes = rng.random(500) < 0.5
        cache.access_many(lines, writes)
        assert cache.stats.writebacks <= int(writes.sum())


class TestHierarchyWritebacks:
    def test_propagates_write_flags(self, small_program):
        from repro.cache.hierarchy import CacheHierarchy
        from repro.config import ALLCACHE_SIM

        hierarchy = CacheHierarchy(ALLCACHE_SIM)
        for trace in small_program.iter_slices(0, 20):
            hierarchy.access_data(trace.mem_lines, trace.mem_is_write)
        snap = hierarchy.snapshot()
        assert snap.levels["L1D"].writebacks > 0
        # Writebacks never exceed misses (write-allocate LRU).
        for name in ("L1D", "L2", "L3"):
            assert snap.levels[name].writebacks <= snap.levels[name].misses
