"""The parallel runner under faults: retry, timeout, skip, fallback.

Every fault here is injected deterministically through a
:class:`~repro.resilience.faults.FaultPlan`, so each recovery path runs
the same way on every machine.  The central contract: whatever a policy
recovers from, the surviving results are byte-identical (and in the same
submission order) as a clean serial run's.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ResilienceError
from repro.parallel import parallel_map, resilient_map, resolve_jobs
from repro.resilience import OnFailure, ResiliencePolicy, Retry, Timeout
from repro.resilience.policy import (
    KIND_BROKEN_POOL,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
)
from repro.telemetry.recorder import TraceRecorder, using_recorder

pytestmark = pytest.mark.resilience

ITEMS = list(range(6))


def counter_total(rec: TraceRecorder, name: str) -> int:
    """Sum a counter across its tag variants (``name`` and ``name{...}``)."""
    return sum(
        value for key, value in rec.metrics.counters.items()
        if key == name or key.startswith(name + "{")
    )


def _tenfold(x):
    return x * 10


def _fail_on_two(x):
    if x == 2:
        raise ValueError("item two exploded")
    return x * 10


SKIP = ResiliencePolicy(on_failure=OnFailure.SKIP)


class TestStrictPolicy:
    def test_clean_run_reports_every_item_ok(self):
        outcome = resilient_map(_tenfold, ITEMS, jobs=2)
        assert outcome.results == [x * 10 for x in ITEMS]
        assert not outcome.degraded
        assert all(o.attempts == 1 for o in outcome.outcomes)

    def test_injected_crash_reraises_the_injected_error(self, inject_faults):
        from repro.resilience import InjectedFaultError

        inject_faults("crash:items=2")
        with pytest.raises(InjectedFaultError, match="item 2"):
            parallel_map(_tenfold, ITEMS, jobs=2)

    def test_worker_exception_survives_retries(self):
        # The original exception (not a wrapper) must come back even
        # when a retry budget re-ran the item first.
        policy = ResiliencePolicy(retry=Retry(attempts=2))
        with pytest.raises(ValueError, match="item two exploded"):
            parallel_map(_fail_on_two, ITEMS, jobs=1, policy=policy)


class TestSkipPolicy:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_survivors_reported_explicitly(self, inject_faults, jobs):
        inject_faults("crash:items=2")
        outcome = resilient_map(_tenfold, ITEMS, jobs=jobs, policy=SKIP)
        assert outcome.results == [0, 10, 30, 40, 50]
        assert outcome.degraded
        assert outcome.summary() == "5 of 6 items completed; skipped: item[2]"
        (failed,) = outcome.failed
        assert failed.kind == KIND_EXCEPTION
        assert "InjectedFaultError" in failed.error

    def test_parallel_survivors_match_serial_survivors(self, inject_faults):
        inject_faults("crash:items=1,4")
        serial = resilient_map(_tenfold, ITEMS, jobs=1, policy=SKIP)
        inject_faults("crash:items=1,4")
        parallel = resilient_map(_tenfold, ITEMS, jobs=3, policy=SKIP)
        assert parallel.results == serial.results
        assert [o.to_payload() for o in parallel.outcomes] == [
            o.to_payload() for o in serial.outcomes
        ]

    def test_parallel_map_returns_surviving_subset(self, inject_faults):
        inject_faults("crash:items=0")
        assert parallel_map(_tenfold, ITEMS, jobs=2, policy=SKIP) == [
            10, 20, 30, 40, 50,
        ]

    def test_skipped_items_count_on_telemetry(self, inject_faults):
        inject_faults("crash:items=2")
        rec = TraceRecorder()
        with using_recorder(rec):
            resilient_map(_tenfold, ITEMS, jobs=1, policy=SKIP)
        assert rec.metrics.counters["parallel.skipped"] == 1


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_first_attempt_crash_recovers(self, inject_faults, jobs):
        inject_faults("crash:items=1:attempt=1")
        policy = ResiliencePolicy(retry=Retry(attempts=2))
        rec = TraceRecorder()
        with using_recorder(rec):
            outcome = resilient_map(_tenfold, ITEMS, jobs=jobs, policy=policy)
        assert outcome.results == [x * 10 for x in ITEMS]
        assert outcome.outcomes[1].attempts == 2
        assert all(
            o.attempts == 1 for o in outcome.outcomes if o.index != 1
        )
        assert counter_total(rec, "item.retry") == 1

    def test_budget_exhaustion_fails_the_item(self, inject_faults):
        inject_faults("crash:items=1")  # every attempt
        policy = ResiliencePolicy(
            retry=Retry(attempts=3), on_failure=OnFailure.SKIP
        )
        outcome = resilient_map(_tenfold, ITEMS, jobs=1, policy=policy)
        (failed,) = outcome.failed
        assert failed.attempts == 3
        assert outcome.summary() == "5 of 6 items completed; skipped: item[1]"


class TestTimeouts:
    def test_hung_worker_becomes_timeout_outcome(self, inject_faults):
        inject_faults("hang:items=0:hang=1.5")
        policy = ResiliencePolicy(
            timeout=Timeout(0.25), on_failure=OnFailure.SKIP
        )
        rec = TraceRecorder()
        with using_recorder(rec):
            outcome = resilient_map(_tenfold, [0, 1], jobs=2, policy=policy)
        assert outcome.results == [10]
        (failed,) = outcome.failed
        assert failed.kind == KIND_TIMEOUT
        assert counter_total(rec, "item.timeout") == 1

    def test_strict_timeout_raises_resilience_error(self, inject_faults):
        inject_faults("hang:items=0:hang=1.5")
        policy = ResiliencePolicy(timeout=Timeout(0.25))
        with pytest.raises(ResilienceError, match="timeout"):
            parallel_map(_tenfold, [0, 1], jobs=2, policy=policy)


class TestBrokenPool:
    """A worker dying mid-task (``os._exit``) collapses the whole pool."""

    def test_serial_fallback_is_byte_identical(self, inject_faults):
        # Satellite differential: the recovered run must equal the
        # clean serial reference exactly, not just "mostly complete".
        reference = parallel_map(_tenfold, ITEMS, jobs=1)
        inject_faults("poolcrash:items=1")
        policy = ResiliencePolicy(on_failure=OnFailure.SERIAL_FALLBACK)
        rec = TraceRecorder()
        with using_recorder(rec):
            recovered = resilient_map(_tenfold, ITEMS, jobs=2, policy=policy)
        assert recovered.results == reference
        assert not recovered.degraded
        assert counter_total(rec, "parallel.serial_fallback") >= 1

    def test_strict_policy_reports_the_collapse(self, inject_faults):
        inject_faults("poolcrash:items=1")
        with pytest.raises(ResilienceError, match="serial-fallback"):
            parallel_map(_tenfold, ITEMS, jobs=2)

    def test_skip_policy_records_broken_pool_casualties(self, inject_faults):
        inject_faults("poolcrash:items=1")
        outcome = resilient_map(_tenfold, ITEMS, jobs=2, policy=SKIP)
        assert outcome.degraded
        assert outcome.failed
        assert all(o.kind == KIND_BROKEN_POOL for o in outcome.failed)
        # Whatever survived matches the serial reference values.
        expected = [x * 10 for x in ITEMS]
        assert all(
            o.value == expected[o.index] for o in outcome.outcomes if o.ok
        )


class TestJobsClamp:
    def test_more_workers_than_items_clamps(self):
        rec = TraceRecorder()
        with using_recorder(rec):
            assert resolve_jobs(8, items=3) == 3
        assert rec.metrics.gauges["parallel.jobs_clamped"] == 8.0

    def test_empty_input_clamps_to_one(self):
        assert resolve_jobs(8, items=0) == 1

    def test_no_gauge_without_a_clamp(self):
        rec = TraceRecorder()
        with using_recorder(rec):
            assert resolve_jobs(2, items=3) == 2
        assert "parallel.jobs_clamped" not in rec.metrics.gauges

    def test_validation_still_applies(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1, items=3)


class TestLabels:
    def test_custom_labels_name_outcomes(self, inject_faults):
        inject_faults("crash:items=1")
        outcome = resilient_map(
            _tenfold, [0, 1], jobs=1, policy=SKIP, labels=["mcf", "xz"]
        )
        assert outcome.summary() == "1 of 2 items completed; skipped: xz"

    def test_string_items_label_themselves(self):
        outcome = resilient_map(str.upper, ["mcf", "xz"], jobs=1)
        assert [o.label for o in outcome.outcomes] == ["mcf", "xz"]

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="labels"):
            resilient_map(_tenfold, [0, 1], jobs=1, labels=["only-one"])
