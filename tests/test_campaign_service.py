"""End-to-end tests of the campaign daemon: real subprocesses, real kills.

These spawn ``repro-spec2017 serve`` as a subprocess (its own session,
so SIGKILL can take out the server *and* its forked worker children the
way a machine crash would), drive it through the sync client, and pin
the service's three headline guarantees:

* a service-run result is byte-identical to a direct CLI run;
* identical concurrent submissions run the work exactly once
  (``campaign.dedup.hit`` >= 1);
* kill -9 mid-campaign + restart ``--resume`` reuses journaled items
  instead of recomputing, and the final artifact is still byte-identical.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.client import CampaignClient
from repro.errors import CampaignServiceError

pytestmark = [pytest.mark.slow, pytest.mark.resilience]

#: One benchmark keeps a job around a second; three give the kill test
#: something to interrupt.
QUICK_BENCH = ["505.mcf_r"]
KILL_BENCH = ["505.mcf_r", "520.omnetpp_r", "525.x264_r"]

BOOT_TIMEOUT_S = 30.0
JOB_TIMEOUT_S = 180.0


def _spawn_server(cache_dir: Path, *extra_args: str) -> subprocess.Popen:
    """Start ``serve`` in its own session; returns once it is listening."""
    ready = cache_dir / f"ready-{time.monotonic_ns()}.json"
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--ready-file", str(ready), *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while not ready.is_file():
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited during boot (code {proc.returncode})"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("server did not become ready in time")
        time.sleep(0.05)
    return proc


def _kill_server_group(proc: subprocess.Popen) -> None:
    """SIGKILL the server's whole session (server + worker children)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=10)


def _shutdown(client: CampaignClient, proc: subprocess.Popen) -> int:
    try:
        client.shutdown()
    except CampaignServiceError:
        pass
    try:
        return proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        _kill_server_group(proc)
        raise


def _client_for(cache_dir: Path) -> CampaignClient:
    return CampaignClient(cache_dir / "campaign.sock")


def _write_result_like_cli(client, job_id: str, path: Path) -> None:
    """Re-serialize a job's stored result exactly as the CLI would."""
    from repro.experiments.registry import (
        get_spec,
        result_from_payload,
        result_payload,
    )

    job = client.status(job_id)
    payload = client.result(job_id)
    spec = get_spec(job["experiment"])
    result = result_from_payload(spec, payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_payload(spec, result), handle, indent=2)
        handle.write("\n")


def _direct_json(tmp_path: Path, benchmarks) -> Path:
    """A direct (service-free) CLI run's --json-out, in a fresh store."""
    from repro.cli import main as cli_main

    out = tmp_path / "direct.json"
    code = cli_main(
        [
            "fig8", "--benchmarks", *benchmarks,
            "--cache-dir", str(tmp_path / "direct-cache"),
            "--json-out", str(out),
        ]
    )
    assert code == 0
    return out


class TestServiceEndToEnd:
    def test_submit_runs_and_matches_direct_run(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cache.mkdir()
        proc = _spawn_server(cache)
        client = _client_for(cache)
        try:
            outcome = client.submit("fig8", {"benchmarks": QUICK_BENCH})
            job_id = outcome["job"]["id"]
            assert outcome["deduped"] is False
            job = client.wait(job_id, timeout_s=JOB_TIMEOUT_S)
            assert job["state"] == "done"
            assert job["completed_items"] == job["total_items"] > 0
            svc_json = tmp_path / "svc.json"
            _write_result_like_cli(client, job_id, svc_json)
        finally:
            assert _shutdown(client, proc) == 0
        direct = _direct_json(tmp_path, QUICK_BENCH)
        assert svc_json.read_bytes() == direct.read_bytes()

    def test_identical_submissions_dedup_to_one_run(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        proc = _spawn_server(cache)
        client = _client_for(cache)
        try:
            first = client.submit("fig8", {"benchmarks": QUICK_BENCH})
            second = client.submit(
                "fig8", {"benchmarks": QUICK_BENCH, "jobs": 2}
            )
            assert second["deduped"] is True
            assert second["job"]["id"] == first["job"]["id"]
            client.wait(first["job"]["id"], timeout_s=JOB_TIMEOUT_S)
            # A third submission after completion dedups against the
            # done job / stored result — still no second run.
            third = client.submit("fig8", {"benchmarks": QUICK_BENCH})
            assert third["deduped"] is True
            counters = client.status()["metrics"]["counters"]
            dedup_hits = sum(
                v for k, v in counters.items()
                if k.startswith("campaign.dedup.hit")
            )
            assert dedup_hits >= 1
            assert counters.get("campaign.queued", 0) == 1
            jobs = client.ls()
            assert len(jobs) == 1
        finally:
            assert _shutdown(client, proc) == 0

    def test_watch_streams_progress_to_end(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        proc = _spawn_server(cache)
        client = _client_for(cache)
        try:
            job_id = client.submit(
                "fig8", {"benchmarks": QUICK_BENCH}
            )["job"]["id"]
            events = list(client.watch(job_id))
            kinds = [event.get("event") for event in events]
            assert kinds[0] == "state"
            assert kinds[-1] == "end"
            assert any(k == "progress" for k in kinds)
            assert events[-1]["state"] == "done"
        finally:
            assert _shutdown(client, proc) == 0

    def test_kill9_then_resume_reuses_journaled_items(self, tmp_path):
        """The acceptance scenario: SIGKILL mid-campaign, restart
        ``--resume``, journaled items are not recomputed, and the final
        artifact is byte-identical to an uninterrupted run."""
        cache = tmp_path / "cache"
        cache.mkdir()
        proc = _spawn_server(cache)
        client = _client_for(cache)
        job_id = client.submit(
            "fig8", {"benchmarks": KILL_BENCH, "jobs": 1}
        )["job"]["id"]
        # Wait until at least one item is journaled, then pull the plug.
        journals = cache / "journals"
        deadline = time.monotonic() + JOB_TIMEOUT_S
        while True:
            items = 0
            for journal in journals.glob("*.jsonl"):
                if journal.name.startswith("campaign-server"):
                    continue
                items += journal.read_bytes().count(b'"event":"item"')
            if items >= 1:
                break
            assert time.monotonic() < deadline, "no item journaled in time"
            time.sleep(0.05)
        _kill_server_group(proc)

        proc2 = _spawn_server(cache, "--resume")
        client2 = _client_for(cache)
        try:
            job = client2.wait(job_id, timeout_s=JOB_TIMEOUT_S)
            assert job["state"] == "done"
            assert job["reused_items"] >= 1
            assert job["completed_items"] == job["total_items"]
            svc_json = tmp_path / "svc.json"
            _write_result_like_cli(client2, job_id, svc_json)
        finally:
            assert _shutdown(client2, proc2) == 0
        direct = _direct_json(tmp_path, KILL_BENCH)
        assert svc_json.read_bytes() == direct.read_bytes()

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        proc = _spawn_server(cache)
        client = _client_for(cache)
        job_id = client.submit(
            "fig8", {"benchmarks": QUICK_BENCH}
        )["job"]["id"]
        # Let the scheduler start the job, then ask for a graceful stop.
        deadline = time.monotonic() + JOB_TIMEOUT_S
        while client.status(job_id)["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=JOB_TIMEOUT_S) == 0
        # The in-flight job was finished (not abandoned) before exit.
        ledger = cache / "journals" / "campaign-server.jsonl"
        states = [
            json.loads(line)["job"]["state"]
            for line in ledger.read_text().splitlines()
            if '"event":"job"' in line or '"event": "job"' in line
        ]
        assert states[-1] == "done"

    def test_cancel_queued_job(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        # One worker slot: the second submission must queue behind the
        # first, so it is reliably cancellable.
        proc = _spawn_server(cache, "--workers", "1")
        client = _client_for(cache)
        try:
            first = client.submit(
                "fig8", {"benchmarks": KILL_BENCH, "jobs": 1}
            )["job"]["id"]
            second = client.submit(
                "fig8", {"benchmarks": ["500.perlbench_r"]}
            )["job"]["id"]
            assert second != first
            cancelled = client.cancel(second)
            deadline = time.monotonic() + JOB_TIMEOUT_S
            while cancelled["state"] not in ("cancelled",):
                assert time.monotonic() < deadline
                time.sleep(0.05)
                cancelled = client.status(second)
            assert cancelled["state"] == "cancelled"
            client.wait(first, timeout_s=JOB_TIMEOUT_S)
        finally:
            assert _shutdown(client, proc) == 0

    def test_client_without_server_fails_cleanly(self, tmp_path):
        client = CampaignClient(tmp_path / "nothing.sock")
        with pytest.raises(CampaignServiceError, match="cannot reach"):
            client.ping()
