"""Unit tests for the supervision layer (no sockets, no forks).

The policy knobs, the supervisor's stall/kill-budget verdicts, the
free-disk probe under the ``diskfull`` service fault, the journal
doctor's quarantine, ledger compaction, admission control, and the
poisoned quarantine surviving ``--resume`` — all driven directly as
objects.  The end-to-end choreography (real forked workers, SIGKILL,
the watchdog task) lives in ``test_campaign_service.py`` and the chaos
harness (``repro.resilience.chaos``).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.jobs import (
    Job,
    STATE_POISONED,
    STATE_QUEUED,
    STATE_RUNNING,
)
from repro.campaign.ledger import ServerLedger
from repro.campaign.supervision import (
    DECISION_POISON,
    DECISION_REQUEUE,
    JobSupervisor,
    SupervisionPolicy,
    free_disk_bytes,
)
from repro.errors import CampaignRejectedError, ConfigError
from repro.resilience.faults import parse_spec, using_plan
from repro.resilience.journal import CampaignJournal


class TestSupervisionPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.stall_timeout_s == 300.0
        assert policy.max_kills == 3
        assert policy.max_queued is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_s": 0},
            {"heartbeat_s": -1.0},
            {"max_kills": 0},
            {"max_kills": True},
            {"max_kills": 1.5},
            {"max_queued": 0},
            {"max_queued": True},
            {"disk_probe_interval_s": 0},
        ],
        ids=lambda kw: repr(kw),
    )
    def test_bad_knobs_refused(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisionPolicy(**kwargs)

    def test_watchdog_wakes_well_inside_one_deadline(self):
        assert SupervisionPolicy(stall_timeout_s=8.0).watchdog_interval_s == 2.0
        # Disabled hang detection still ticks (cheaply) for disk probes.
        assert SupervisionPolicy(stall_timeout_s=0).watchdog_interval_s == 1.0
        # Never busier than 20 Hz, however tight the deadline.
        assert SupervisionPolicy(
            stall_timeout_s=0.01
        ).watchdog_interval_s == 0.05

    def test_describe_is_json_safe(self):
        doc = SupervisionPolicy(max_queued=7).describe()
        assert doc["max_queued"] == 7
        assert json.loads(json.dumps(doc)) == doc


class TestJobSupervisor:
    SECOND_NS = 1_000_000_000

    def make(self, **kwargs) -> JobSupervisor:
        return JobSupervisor(SupervisionPolicy(stall_timeout_s=10.0, **kwargs))

    def test_fresh_start_is_not_stalled(self):
        sup = self.make()
        sup.note_start("job-1", now_ns=0)
        assert sup.stalled_jobs(now_ns=9 * self.SECOND_NS) == []

    def test_silence_past_the_deadline_stalls(self):
        sup = self.make()
        sup.note_start("job-1", now_ns=0)
        assert sup.stalled_jobs(now_ns=11 * self.SECOND_NS) == ["job-1"]

    def test_beats_push_the_deadline_out(self):
        sup = self.make()
        sup.note_start("job-1", now_ns=0)
        sup.note_beat("job-1", now_ns=8 * self.SECOND_NS)
        assert sup.stalled_jobs(now_ns=17 * self.SECOND_NS) == []
        assert sup.stalled_jobs(now_ns=19 * self.SECOND_NS) == ["job-1"]

    def test_beats_for_unknown_jobs_ignored(self):
        sup = self.make()
        sup.note_beat("never-started", now_ns=0)
        assert sup.stalled_jobs(now_ns=99 * self.SECOND_NS) == []

    def test_exit_stops_liveness_tracking(self):
        sup = self.make()
        sup.note_start("job-1", now_ns=0)
        sup.note_exit("job-1")
        assert sup.stalled_jobs(now_ns=99 * self.SECOND_NS) == []

    def test_killed_jobs_not_reported_stalled_again(self):
        # Between the watchdog's SIGKILL and the reap the job would
        # otherwise re-stall every watchdog tick.
        sup = self.make()
        sup.note_start("job-1", now_ns=0)
        sup.note_kill("job-1", "stalled")
        assert sup.stalled_jobs(now_ns=99 * self.SECOND_NS) == []
        assert sup.kill_reason("job-1") == "stalled"
        # The reason is consumed by the reap.
        assert sup.kill_reason("job-1") is None

    def test_zero_timeout_disables_hang_detection(self):
        sup = JobSupervisor(SupervisionPolicy(stall_timeout_s=0))
        sup.note_start("job-1", now_ns=0)
        assert sup.stalled_jobs(now_ns=10**15) == []

    def test_kill_budget_requeues_then_poisons(self):
        sup = self.make(max_kills=3)
        job = Job(id="job-1", experiment="fig8")
        assert sup.record_kill(job) == DECISION_REQUEUE
        assert sup.record_kill(job) == DECISION_REQUEUE
        assert sup.record_kill(job) == DECISION_POISON
        assert job.kills == 3


class TestFreeDiskBytes:
    def test_reports_real_free_space(self, tmp_path):
        assert free_disk_bytes(tmp_path) > 0

    def test_diskfull_fault_forces_zero(self, tmp_path):
        with using_plan(parse_spec("diskfull:every=1")):
            assert free_disk_bytes(tmp_path) == 0

    def test_unstatable_root_reads_empty(self, tmp_path):
        assert free_disk_bytes(tmp_path / "no" / "such" / "dir") == 0


class TestJournalDoctor:
    def intact_journal(self, tmp_path, n: int = 3) -> CampaignJournal:
        journal = CampaignJournal(tmp_path / "journals" / "doc.jsonl")
        for i in range(n):
            journal.append({"event": "job", "i": i})
        journal.close()
        return journal

    def test_clean_journal_untouched(self, tmp_path):
        journal = self.intact_journal(tmp_path)
        before = journal.path.read_bytes()
        report = journal.doctor()
        assert report == {"lines": 3, "intact": 3, "quarantined": 0}
        assert journal.path.read_bytes() == before
        assert not journal.quarantine_path.exists()

    def test_torn_final_line_quarantined(self, tmp_path):
        journal = self.intact_journal(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b'{"event": "job", "i": 3, "schema": "re')
        report = journal.doctor()
        assert report["quarantined"] == 1
        assert report["intact"] == 3
        assert len(journal.load()) == 3
        assert b'"i": 3' in journal.quarantine_path.read_bytes()

    def test_corrupt_midfile_line_quarantined_intact_kept(self, tmp_path):
        journal = self.intact_journal(tmp_path)
        lines = journal.path.read_bytes().splitlines()
        mangled = lines[:1] + [b"\x00garbage\xff"] + lines[1:]
        journal.path.write_bytes(b"\n".join(mangled) + b"\n")
        report = journal.doctor()
        assert report["quarantined"] == 1
        # Survivors are byte-identical, in their original order.
        assert journal.path.read_bytes().splitlines() == lines

    def test_doctor_is_idempotent(self, tmp_path):
        journal = self.intact_journal(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b"not json\n")
        first = journal.doctor()
        after_first = journal.path.read_bytes()
        second = journal.doctor()
        assert first["quarantined"] == 1
        assert second["quarantined"] == 0
        assert journal.path.read_bytes() == after_first

    def test_missing_journal_is_healthy(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journals" / "ghost.jsonl")
        assert journal.doctor() == {"lines": 0, "intact": 0, "quarantined": 0}


class TestLedgerCompaction:
    def grow_history(self, root) -> None:
        ledger = ServerLedger(root)
        for i in range(3):
            job = Job(id=f"job-{i}", experiment="fig8", kwargs={"jobs": i})
            ledger.record_submit(job)
            job.state = STATE_RUNNING
            ledger.record_state(job)
            if i == 0:
                job.state = "done"
                ledger.record_state(job)
        ledger.close()

    @staticmethod
    def replayed(root):
        ledger = ServerLedger(root)
        jobs = [job.describe() for job in ledger.load()]
        ledger.close()
        return jobs

    def test_snapshot_tail_replays_like_full_history(self, tmp_path):
        full_root = tmp_path / "full"
        compacted_root = tmp_path / "compacted"
        for root in (full_root, compacted_root):
            self.grow_history(root)

        ledger = ServerLedger(compacted_root)
        ledger.acquire()
        ledger.compact(ledger.load())
        ledger.close()
        # The tail: one more transition after the snapshot, mirrored
        # into the full-history ledger.
        for root in (full_root, compacted_root):
            tail = ServerLedger(root)
            job = Job(id="job-2", experiment="fig8", kwargs={"jobs": 2})
            job.state = "failed"
            tail.record_state(job)
            tail.close()

        assert self.replayed(compacted_root) == self.replayed(full_root)

    def test_compaction_bounds_the_file_and_is_idempotent(self, tmp_path):
        self.grow_history(tmp_path)
        ledger = ServerLedger(tmp_path)
        ledger.acquire()
        before = self.count_lines(ledger)
        ledger.compact(ledger.load())
        once = ledger.journal.path.read_bytes()
        assert self.count_lines(ledger) == 1 < before
        ledger.compact(ledger.load())
        assert ledger.journal.path.read_bytes() == once
        ledger.close()

    @staticmethod
    def count_lines(ledger) -> int:
        return len(ledger.journal.path.read_bytes().splitlines())


@pytest.fixture
def server_factory(tmp_path):
    """Build direct (loop-less) CampaignServer instances on one store."""
    from repro.campaign.server import CampaignServer
    from repro.parallel.store import ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    servers = []

    def build(**kwargs):
        server = CampaignServer(store, tmp_path / "sock", **kwargs)
        server.boot()
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.ledger.close()


class TestAdmissionControl:
    def test_full_queue_rejects_with_structured_error(self, server_factory):
        server = server_factory(
            supervision=SupervisionPolicy(max_queued=1)
        )
        server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        with pytest.raises(CampaignRejectedError, match="queue is full"):
            server.submit("fig8", {"benchmarks": ["520.omnetpp_r"]})

    def test_stored_results_bypass_admission(self, server_factory):
        from repro.campaign.jobs import result_params

        server = server_factory(
            supervision=SupervisionPolicy(max_queued=1)
        )
        server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        params = result_params("fig8", {"benchmarks": ["520.omnetpp_r"]})
        server.store.put_json("result", params, {"any": "payload"})
        # The answer already exists: serving it adds no queue load, so
        # a full queue must not refuse it.
        outcome = server.submit("fig8", {"benchmarks": ["520.omnetpp_r"]})
        assert outcome["deduped"] is True
        assert outcome["job"]["state"] == "done"

    def test_rejections_are_counted(self, server_factory):
        server = server_factory(
            supervision=SupervisionPolicy(max_queued=1)
        )
        server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        with pytest.raises(CampaignRejectedError):
            server.submit("fig8", {"benchmarks": ["520.omnetpp_r"]})
        counters = server.recorder.metrics.snapshot()["counters"]
        assert counters.get("campaign.rejected") == 1


class TestPoisonedQuarantine:
    def poison_job(self, server) -> str:
        job_id = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})["job"][
            "id"
        ]
        job = server._jobs[job_id]
        job.kills = server.supervision.max_kills
        job.error = "poisoned after 3 dead workers"
        server._transition(job, STATE_POISONED)
        return job_id

    def test_poisoned_survives_resume_without_requeue(self, server_factory):
        first = server_factory()
        job_id = self.poison_job(first)
        first.ledger.close()

        reborn = server_factory(resume=True)
        job = reborn._jobs[job_id]
        assert job.state == STATE_POISONED
        assert job.kills == 3
        # Terminal: not adopted back into the queue.
        assert reborn._adopted == 0
        assert len(reborn._queue) == 0

    def test_poisoned_does_not_hold_the_dedup_slot(self, server_factory):
        server = server_factory()
        self.poison_job(server)
        again = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})
        assert again["deduped"] is False
        assert again["job"]["state"] == STATE_QUEUED


class TestWatchdog:
    class FakeProc:
        def __init__(self):
            self.killed = False

        def is_alive(self):
            return not self.killed

        def kill(self):
            self.killed = True

    def test_check_stalls_kills_and_records(self, server_factory):
        server = server_factory(
            supervision=SupervisionPolicy(stall_timeout_s=0.001)
        )
        job_id = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})["job"][
            "id"
        ]
        job = server._jobs[job_id]
        job.state = STATE_RUNNING
        proc = self.FakeProc()
        server._running[job_id] = proc
        server.supervisor.note_start(job_id, now_ns=0)

        server._check_stalls()

        assert proc.killed is True
        reason = server.supervisor.kill_reason(job_id)
        assert reason is not None and "watchdog" in reason
        counters = server.recorder.metrics.snapshot()["counters"]
        assert counters.get("campaign.watchdog.kill") == 1
        del server._running[job_id]

    def test_kill_budget_cycle_requeues_then_poisons(self, server_factory):
        server = server_factory(
            supervision=SupervisionPolicy(max_kills=2)
        )
        job_id = server.submit("fig8", {"benchmarks": ["505.mcf_r"]})["job"][
            "id"
        ]
        job = server._jobs[job_id]
        assert server.supervisor.record_kill(job) == DECISION_REQUEUE
        assert server.supervisor.record_kill(job) == DECISION_POISON
