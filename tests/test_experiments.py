"""Experiment drivers on quick configurations.

These tests run every table/figure driver end-to-end on a small subset
with reduced workload sizes and assert the *structural* claims each
experiment exists to show.  Full-suite, full-size reproduction happens in
the benchmark harness and test_integration.py.
"""

import numpy as np
import pytest

from repro.experiments import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig12,
    render_table2,
    run_fig3_maxk,
    run_fig3_slice_size,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig12,
    run_table2,
)
from repro.experiments.common import LEVELS, clear_pinpoints_cache

from conftest import QUICK

#: Small suite subset used by every quick experiment test.
SUBSET = ["620.omnetpp_s", "557.xz_r"]


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_pinpoints_cache()
    yield
    clear_pinpoints_cache()


class TestTable2:
    def test_quick_subset_matches(self):
        result = run_table2(SUBSET, **QUICK)
        assert len(result.rows) == 2
        assert result.mismatches == []

    def test_render(self):
        result = run_table2(SUBSET, **QUICK)
        text = render_table2(result)
        assert "620.omnetpp_s" in text
        assert "Average" in text


class TestFig3:
    def test_maxk_sweep_shapes(self):
        result = run_fig3_maxk(
            "557.xz_r", maxk_values=(4, 13), **QUICK
        )
        assert [p.setting for p in result.points] == [4.0, 13.0]
        # Starved MaxK must not exceed its cap.
        assert result.points[0].chosen_k <= 4
        # Starving the clusters hurts the mix accuracy.
        assert result.points[0].mix_error_pp >= result.points[1].mix_error_pp

    def test_slice_size_sweep(self):
        result = run_fig3_slice_size("620.omnetpp_s", slice_sizes_m=(15, 30))
        assert len(result.points) == 2
        for point in result.points:
            assert point.metrics.instructions > 0

    def test_render(self):
        result = run_fig3_maxk("557.xz_r", maxk_values=(13,), **QUICK)
        assert "MaxK" in render_fig3(result)


class TestFig4:
    def test_variance_decreases(self):
        result = run_fig4(SUBSET, k_values=(2, 8, 16), **QUICK)
        for curve in result.curves.values():
            assert curve[2] >= curve[16]

    def test_render(self):
        result = run_fig4(["620.omnetpp_s"], k_values=(2, 4), **QUICK)
        assert "Figure 4" in render_fig4(result)


class TestFig5:
    def test_reductions_in_paper_regime(self):
        result = run_fig5(SUBSET, **QUICK)
        # Shape claims: large reductions, reduced > regional.
        assert result.instruction_reduction > 50
        assert result.reduced_instruction_reduction > \
            result.instruction_reduction
        assert result.time_reduction > 50
        assert result.regional_to_reduced_instructions > 1.0

    def test_per_row_consistency(self):
        result = run_fig5(SUBSET, **QUICK)
        for row in result.rows:
            assert row.whole.instructions > row.regional.instructions
            assert row.regional.instructions >= row.reduced.instructions

    def test_render(self):
        assert "paper ~650x" in render_fig5(run_fig5(SUBSET, **QUICK))


class TestFig6:
    def test_weights_descend_and_sum_to_one(self):
        result = run_fig6(SUBSET, **QUICK)
        for row in result.rows:
            assert row.weights == sorted(row.weights, reverse=True)
            assert sum(row.weights) == pytest.approx(1.0)

    def test_cut_consistent_with_weights(self):
        result = run_fig6(SUBSET, **QUICK)
        for row in result.rows:
            covered = sum(row.weights[: row.cut])
            assert covered >= 0.9
            assert sum(row.weights[: row.cut - 1]) < 0.9

    def test_render(self):
        assert "90% cut" in render_fig6(run_fig6(["557.xz_r"], **QUICK))


class TestFig7:
    def test_mix_errors_small(self):
        result = run_fig7(SUBSET, **QUICK)
        # The paper's bound is < 1 pp; quick configs stay within a few pp.
        assert result.max_regional_error_pp < 3.0
        assert result.max_reduced_error_pp < 5.0

    def test_mixes_normalized(self):
        result = run_fig7(SUBSET, **QUICK)
        for row in result.rows:
            for mix in (row.whole, row.regional, row.reduced):
                assert mix.sum() == pytest.approx(1.0)

    def test_render(self):
        assert "NO_MEM" in render_fig7(run_fig7(SUBSET, **QUICK))


class TestFig8:
    def test_l3_error_dominates_and_warmup_helps(self):
        result = run_fig8(SUBSET, **QUICK)
        regional_l3 = result.average_delta_pp("regional", "L3")
        warmup_l3 = result.average_delta_pp("warmup", "L3")
        regional_l1 = abs(result.average_delta_pp("regional", "L1D"))
        # Cold L3 error is large, far above L1D, and warmup reduces it.
        assert regional_l3 > 5.0
        assert regional_l3 > regional_l1
        assert warmup_l3 < regional_l3

    def test_summary_structure(self):
        result = run_fig8(SUBSET, **QUICK)
        summary = result.summary()
        assert set(summary) == {"regional", "reduced", "warmup"}
        assert set(summary["regional"]) == set(LEVELS)

    def test_render(self):
        assert "paper" in render_fig8(run_fig8(["620.omnetpp_s"], **QUICK))


class TestFig9:
    def test_error_decreases_with_percentile(self):
        result = run_fig9(SUBSET, percentiles=(0.5, 0.9, 1.0), **QUICK)
        by_pct = result.by_percentile()
        assert by_pct[1.0].mix_error_pp <= by_pct[0.5].mix_error_pp + 0.5
        assert by_pct[0.5].execution_hours < by_pct[1.0].execution_hours
        assert by_pct[0.5].points_retained < by_pct[1.0].points_retained

    def test_render(self):
        result = run_fig9(SUBSET, percentiles=(0.9, 1.0), **QUICK)
        assert "percentile" in render_fig9(result)


class TestFig10:
    def test_whole_exercises_l3_more(self):
        result = run_fig10(SUBSET, **QUICK)
        for row in result.rows:
            assert row.whole > row.regional >= row.reduced
        assert result.average_ratio > 2

    def test_render(self):
        assert "L3" in render_fig10(run_fig10(SUBSET, **QUICK))


class TestFig12:
    def test_cpi_errors_bounded(self):
        result = run_fig12(SUBSET, **QUICK)
        assert 0 < result.average_regional_error_pct < 25
        for row in result.rows:
            assert row.native_cpi > 0
            assert row.regional_cpi > 0

    def test_outlier_reported(self):
        result = run_fig12(SUBSET, **QUICK)
        assert result.worst_outlier.benchmark in SUBSET

    def test_render(self):
        assert "2.59" in render_fig12(run_fig12(SUBSET, **QUICK))
