"""Phase weight solver, slice-count repair, and PhaseSpec validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.phases import (
    PhaseSpec,
    geometric_phase_weights,
    ninety_percentile_count,
    phase_slice_counts,
)
from repro.workloads.spec2017 import SPEC_CPU2017

from conftest import make_phase

#: All (num_phases, num_90pct) pairs from Table II.
TABLE_II_PAIRS = sorted(
    {(d.num_phases, d.num_90pct) for d in SPEC_CPU2017.values()}
)


class TestGeometricWeights:
    @pytest.mark.parametrize("n,n90", TABLE_II_PAIRS)
    def test_all_table2_profiles_solvable(self, n, n90):
        weights = geometric_phase_weights(n, n90)
        assert weights.shape == (n,)
        assert weights.sum() == pytest.approx(1.0)
        # Descending order.
        assert (np.diff(weights) <= 1e-12).all()
        # The cut lands exactly at n90.
        assert ninety_percentile_count(weights) == n90

    def test_rejects_single_phase(self):
        with pytest.raises(WorkloadError):
            geometric_phase_weights(1, 1)

    def test_rejects_out_of_range_cut(self):
        with pytest.raises(WorkloadError):
            geometric_phase_weights(10, 0)
        with pytest.raises(WorkloadError):
            geometric_phase_weights(10, 10)

    def test_rejects_too_flat_profile(self):
        # 19 of 20 phases covering 90% is flatter than geometric allows.
        with pytest.raises(WorkloadError):
            geometric_phase_weights(20, 19)

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(3, 30), frac=st.floats(0.15, 0.8))
    def test_property_cut_is_exact(self, n, frac):
        n90 = max(1, min(n - 1, int(round(frac * n))))
        weights = geometric_phase_weights(n, n90)
        assert ninety_percentile_count(weights) == n90


class TestNinetyPercentileCount:
    def test_uniform_weights(self):
        assert ninety_percentile_count(np.full(10, 0.1)) == 9

    def test_single_dominant(self):
        assert ninety_percentile_count(np.array([0.95, 0.03, 0.02])) == 1

    def test_unnormalized_input(self):
        assert ninety_percentile_count(np.array([95.0, 3.0, 2.0])) == 1

    def test_custom_threshold(self):
        weights = np.array([0.5, 0.3, 0.2])
        assert ninety_percentile_count(weights, threshold=0.5) == 1
        assert ninety_percentile_count(weights, threshold=0.8) == 2

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            ninety_percentile_count(np.array([]))


class TestPhaseSliceCounts:
    @pytest.mark.parametrize("n,n90", TABLE_II_PAIRS)
    def test_table2_counts_preserve_cut(self, n, n90):
        weights = geometric_phase_weights(n, n90)
        counts = phase_slice_counts(weights, 600, n90)
        assert counts.sum() == 600
        assert counts.min() >= 1
        assert ninety_percentile_count(counts.astype(float)) == n90

    @pytest.mark.parametrize("total", [120, 300, 600, 1000])
    def test_various_slice_budgets(self, total):
        weights = geometric_phase_weights(18, 9)
        counts = phase_slice_counts(weights, total, 9)
        assert counts.sum() == total
        assert ninety_percentile_count(counts.astype(float)) == 9

    def test_rejects_too_few_slices(self):
        weights = geometric_phase_weights(20, 10)
        with pytest.raises(WorkloadError):
            phase_slice_counts(weights, 30, 10)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(3, 28), frac=st.floats(0.2, 0.75),
           total=st.integers(150, 800))
    def test_property_repair_converges(self, n, frac, total):
        n90 = max(1, min(n - 1, int(round(frac * n))))
        weights = geometric_phase_weights(n, n90)
        total = max(total, 2 * n, 10 * (n - n90) + 10)
        counts = phase_slice_counts(weights, total, n90)
        assert counts.sum() == total
        assert ninety_percentile_count(counts.astype(float)) == n90

    def test_infeasible_cut_rejected(self):
        weights = geometric_phase_weights(21, 5)
        with pytest.raises(WorkloadError):
            phase_slice_counts(weights, 150, 5)


class TestPhaseSpecValidation:
    def test_valid_spec(self):
        spec = make_phase(0)
        assert spec.phase_id == 0

    def test_rejects_bad_weight(self):
        with pytest.raises(WorkloadError):
            make_phase(0, weight=0.0)
        with pytest.raises(WorkloadError):
            make_phase(0, weight=1.5)

    def test_rejects_unnormalized_mix(self):
        with pytest.raises(WorkloadError):
            make_phase(0, mix=(0.5, 0.5, 0.5, 0.5))

    def test_rejects_wrong_length_mem_fractions(self):
        with pytest.raises(WorkloadError):
            make_phase(0, mem_fractions=(0.5, 0.3, 0.2))

    def test_rejects_negative_mix_entry(self):
        with pytest.raises(WorkloadError):
            make_phase(0, mix=(1.2, -0.2, 0.0, 0.0))

    def test_rejects_wrong_ws_count(self):
        with pytest.raises(WorkloadError):
            make_phase(0, ws_lines=(8, 40, 1000))

    def test_rejects_zero_working_set(self):
        with pytest.raises(WorkloadError):
            make_phase(0, ws_lines=(0, 40, 1000, 2500))

    def test_rejects_bad_branch_fraction(self):
        with pytest.raises(WorkloadError):
            make_phase(0, branch_fraction=1.0)

    def test_rejects_bad_entropy(self):
        with pytest.raises(WorkloadError):
            make_phase(0, branch_entropy=-0.1)

    def test_rejects_empty_code(self):
        with pytest.raises(WorkloadError):
            make_phase(0, num_blocks=0)
        with pytest.raises(WorkloadError):
            make_phase(0, code_lines=0)
