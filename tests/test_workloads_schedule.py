"""Phase schedule construction and structure."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.schedule import PhaseSchedule


class TestFromCounts:
    def test_counts_preserved(self):
        schedule = PhaseSchedule.from_counts([10, 5, 3], seed=1)
        assert schedule.phase_counts().tolist() == [10, 5, 3]
        assert len(schedule) == 18

    def test_deterministic(self):
        a = PhaseSchedule.from_counts([10, 5, 3], seed=1)
        b = PhaseSchedule.from_counts([10, 5, 3], seed=1)
        assert np.array_equal(a.assignment, b.assignment)

    def test_seed_changes_order(self):
        a = PhaseSchedule.from_counts([10, 10, 10], seed=1)
        b = PhaseSchedule.from_counts([10, 10, 10], seed=2)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_run_lengths_near_target(self):
        schedule = PhaseSchedule.from_counts([100, 100], seed=0,
                                             mean_run_length=10)
        lengths = schedule.run_lengths()
        assert sum(lengths) == 200
        assert np.mean(lengths) >= 5

    def test_single_slice_phase(self):
        schedule = PhaseSchedule.from_counts([1, 50], seed=0)
        assert schedule.phase_counts().tolist() == [1, 50]

    def test_run_length_one_interleaves(self):
        schedule = PhaseSchedule.from_counts([20, 20], seed=0,
                                             mean_run_length=1)
        assert max(schedule.run_lengths()) <= 20

    def test_rejects_zero_count(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule.from_counts([5, 0, 3], seed=0)

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule.from_counts([], seed=0)

    def test_rejects_bad_run_length(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule.from_counts([5, 5], seed=0, mean_run_length=0)


class TestAccess:
    def test_getitem(self):
        schedule = PhaseSchedule([0, 1, 1, 2], num_phases=3)
        assert schedule[0] == 0
        assert schedule[3] == 2

    def test_assignment_read_only(self):
        schedule = PhaseSchedule([0, 1], num_phases=2)
        with pytest.raises(ValueError):
            schedule.assignment[0] = 1

    def test_rejects_unknown_phase(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule([0, 5], num_phases=2)

    def test_run_lengths_partition(self):
        schedule = PhaseSchedule([0, 0, 1, 1, 1, 0], num_phases=2)
        assert schedule.run_lengths() == [2, 3, 1]
