"""The on-disk artifact store: keys, atomicity, corruption, safety."""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.parallel import (
    ArtifactStore,
    artifact_key,
    canonical_params,
    default_cache_dir,
)


@dataclass(frozen=True)
class _Geometry:
    sets: int
    ways: int


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store", version="test-1")


class TestKeys:
    def test_stable_across_processes_and_dict_order(self):
        a = artifact_key("k", {"b": 1, "a": 2}, version="v")
        b = artifact_key("k", {"a": 2, "b": 1}, version="v")
        assert a == b
        assert len(a) == 64 and set(a) <= set("0123456789abcdef")

    def test_kind_version_and_params_distinguish(self):
        base = artifact_key("k", {"x": 1}, version="v")
        assert artifact_key("other", {"x": 1}, version="v") != base
        assert artifact_key("k", {"x": 1}, version="v2") != base
        assert artifact_key("k", {"x": 2}, version="v") != base

    def test_tuple_and_list_are_equivalent(self):
        assert artifact_key("k", {"x": (1, 2)}, version="v") == artifact_key(
            "k", {"x": [1, 2]}, version="v"
        )

    def test_float_keys_are_bit_exact(self):
        a = artifact_key("k", {"x": 0.1}, version="v")
        b = artifact_key("k", {"x": 0.1 + 2**-55}, version="v")
        assert a != b
        # ... and an int is not a float: 1 and 1.0 are different keys.
        assert artifact_key("k", {"x": 1}, version="v") != artifact_key(
            "k", {"x": 1.0}, version="v"
        )

    def test_numpy_scalars_and_dataclasses(self):
        assert canonical_params(np.int64(7)) == 7
        geometry = canonical_params(_Geometry(sets=4, ways=2))
        assert geometry["__dataclass__"] == "_Geometry"
        assert geometry["fields"] == {"sets": 4, "ways": 2}

    def test_unhashable_params_rejected(self):
        with pytest.raises(StoreError):
            canonical_params(object())
        with pytest.raises(StoreError):
            canonical_params({1: "non-string key"})

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.floats(allow_nan=False),
                st.text(max_size=16),
                st.lists(st.integers(), max_size=4),
            ),
            max_size=5,
        )
    )
    def test_key_is_a_pure_function(self, params):
        assert artifact_key("k", params, version="v") == artifact_key(
            "k", dict(reversed(list(params.items()))), version="v"
        )


class TestRoundTrip:
    def test_json(self, store):
        params = {"benchmark": "620.omnetpp_s", "slices": 120}
        assert store.get_json("metrics", params) is None
        store.put_json("metrics", params, {"miss_rate": 0.25})
        assert store.get_json("metrics", params) == {"miss_rate": 0.25}

    def test_pickle(self, store):
        payload = {"array": np.arange(5), "nested": [(1, 2)]}
        assert store.get_pickle("pinpoints", {"b": "x"}) is None
        store.put_pickle("pinpoints", {"b": "x"}, payload)
        loaded = store.get_pickle("pinpoints", {"b": "x"})
        assert np.array_equal(loaded["array"], payload["array"])
        assert loaded["nested"] == [(1, 2)]

    def test_json_floats_round_trip_exactly(self, store):
        values = [0.1, 1 / 3, 2**-40, 1e300]
        store.put_json("metrics", {"k": 1}, {"values": values})
        assert store.get_json("metrics", {"k": 1})["values"] == values

    def test_version_change_invalidates(self, store, tmp_path):
        store.put_json("metrics", {"k": 1}, {"v": 1})
        upgraded = ArtifactStore(tmp_path / "store", version="test-2")
        assert upgraded.get_json("metrics", {"k": 1}) is None


class TestCorruption:
    def test_corrupt_json_discarded_and_recomputable(self, store):
        path = store.put_json("metrics", {"k": 1}, {"v": 1})
        path.write_bytes(b'{"v": 1')  # truncated write
        assert store.get_json("metrics", {"k": 1}) is None
        assert not path.exists()
        store.put_json("metrics", {"k": 1}, {"v": 2})
        assert store.get_json("metrics", {"k": 1}) == {"v": 2}

    def test_corrupt_pickle_discarded(self, store):
        path = store.put_pickle("pinpoints", {"k": 1}, [1, 2, 3])
        path.write_bytes(path.read_bytes()[:-4])
        assert store.get_pickle("pinpoints", {"k": 1}) is None
        assert not path.exists()


class TestConcurrency:
    def test_concurrent_writers_leave_one_complete_artifact(self, store):
        errors = []

        def put(i):
            try:
                store.put_json("metrics", {"k": "shared"}, {"writer": i})
            except StoreError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=put, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        payload = store.get_json("metrics", {"k": "shared"})
        assert payload is not None and 0 <= payload["writer"] < 16
        # No temp-file litter: exactly one artifact remains.
        assert store.info().total_artifacts == 1


class TestMaintenance:
    def test_info_counts_by_kind(self, store):
        info = store.info()
        assert not info.exists and info.total_artifacts == 0
        store.put_json("metrics", {"k": 1}, {})
        store.put_json("metrics", {"k": 2}, {})
        store.put_pickle("pinpoints", {"k": 1}, [1])
        info = store.info()
        assert info.exists
        assert info.artifacts == {"metrics": 2, "pinpoints": 1}
        assert info.total_bytes > 0
        assert "metrics" in info.render()

    def test_clear_removes_artifacts_but_not_root(self, store):
        store.put_json("metrics", {"k": 1}, {})
        assert store.clear() == 1
        assert store.info().total_artifacts == 0
        assert store.root.exists()
        assert store.clear() == 0

    def test_clear_refuses_unmarked_directory(self, tmp_path):
        foreign = tmp_path / "home"
        foreign.mkdir()
        (foreign / "precious.txt").write_text("do not delete")
        innocent = ArtifactStore(foreign, version="v")
        with pytest.raises(StoreError):
            innocent.clear()
        assert (foreign / "precious.txt").exists()

    def test_marker_written_on_first_put(self, store):
        store.put_json("metrics", {"k": 1}, {})
        marker = store.root / "repro-store.json"
        assert json.loads(marker.read_text())["schema"] == "repro-store-v2"


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-spec2017"
