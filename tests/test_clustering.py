"""K-means, BIC k-selection, and random projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    bic_score,
    choose_k,
    kmeans,
    project,
    random_projection_matrix,
)
from repro.errors import ClusteringError


def blobs(rng, k=4, per=40, dim=8, spread=0.02, sep=5.0):
    """Well-separated Gaussian blobs with ground-truth labels."""
    centers = rng.normal(0, sep, size=(k, dim))
    data = np.vstack([
        centers[i] + rng.normal(0, spread, size=(per, dim)) for i in range(k)
    ])
    labels = np.repeat(np.arange(k), per)
    return data, labels, centers


class TestKMeans:
    def test_recovers_clean_clusters(self, rng):
        data, truth, _ = blobs(rng, k=4)
        result = kmeans(data, 4, seed=0)
        # Partition must match ground truth up to relabeling.
        for cluster in range(4):
            members = truth[result.labels == cluster]
            assert len(set(members.tolist())) == 1

    def test_inertia_nonincreasing_in_k(self, rng):
        data, _, _ = blobs(rng, k=4)
        inertias = [kmeans(data, k, seed=1).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_deterministic(self, rng):
        data, _, _ = blobs(rng)
        a = kmeans(data, 4, seed=3)
        b = kmeans(data, 4, seed=3)
        assert np.array_equal(a.labels, b.labels)
        assert a.inertia == b.inertia

    def test_labels_in_range_and_no_empty_clusters(self, rng):
        data = rng.normal(size=(50, 5))
        result = kmeans(data, 7, seed=0)
        sizes = result.cluster_sizes()
        assert result.labels.min() >= 0 and result.labels.max() < 7
        assert (sizes > 0).all()

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(6, 3))
        result = kmeans(data, 6, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one(self, rng):
        data = rng.normal(size=(20, 3))
        result = kmeans(data, 1, seed=0)
        assert np.allclose(result.centers[0], data.mean(axis=0))

    def test_cluster_variances_shape(self, rng):
        data, _, _ = blobs(rng, k=3)
        result = kmeans(data, 3, seed=0)
        assert result.cluster_variances.shape == (3,)
        assert (result.cluster_variances >= 0).all()

    def test_average_cluster_variance_decreases_with_k(self, rng):
        data, _, _ = blobs(rng, k=6, spread=0.5)
        high = kmeans(data, 2, seed=0).average_cluster_variance()
        low = kmeans(data, 6, seed=0).average_cluster_variance()
        assert low < high

    @pytest.mark.parametrize("init", ["maximin", "k-means++", "random"])
    def test_all_inits_recover_clean_clusters(self, init, rng):
        data, truth, _ = blobs(rng, k=3, per=30)
        result = kmeans(data, 3, seed=0, n_init=5, init=init)
        for cluster in range(3):
            members = truth[result.labels == cluster]
            assert len(set(members.tolist())) == 1

    def test_maximin_seeds_tiny_cluster(self, rng):
        # One dominant blob (300 pts) + one 2-point blob far away.
        big = rng.normal(0, 0.05, size=(300, 6))
        tiny = rng.normal(8, 0.05, size=(2, 6))
        data = np.vstack([big, tiny])
        result = kmeans(data, 2, seed=0, init="maximin")
        sizes = sorted(result.cluster_sizes().tolist())
        assert sizes == [2, 300]

    def test_rejects_bad_k(self, rng):
        data = rng.normal(size=(5, 2))
        with pytest.raises(ClusteringError):
            kmeans(data, 0)
        with pytest.raises(ClusteringError):
            kmeans(data, 6)

    def test_rejects_empty_data(self):
        with pytest.raises(ClusteringError):
            kmeans(np.empty((0, 3)), 1)

    def test_rejects_unknown_init(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.normal(size=(10, 2)), 2, init="bogus")

    def test_rejects_bad_n_init(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.normal(size=(10, 2)), 2, n_init=0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 40), k=st.integers(1, 5), seed=st.integers(0, 99))
    def test_property_partition_is_total(self, n, k, seed):
        k = min(k, n)
        data = np.random.default_rng(seed).normal(size=(n, 4))
        result = kmeans(data, k, seed=seed)
        assert result.labels.size == n
        assert result.cluster_sizes().sum() == n


class TestBic:
    def test_bic_prefers_true_k(self, rng):
        data, _, _ = blobs(rng, k=5, per=50)
        scores = [
            bic_score(data, kmeans(data, k, seed=k)) for k in (2, 5)
        ]
        assert scores[1] > scores[0]

    def test_choose_k_finds_true_k(self, rng):
        data, _, _ = blobs(rng, k=5, per=50)
        k, result, scores = choose_k(data, max_k=10, seed=0)
        assert k == 5
        assert result.k == 5
        assert len(scores) == 10

    def test_choose_k_respects_max_k(self, rng):
        data, _, _ = blobs(rng, k=6, per=30)
        k, _, _ = choose_k(data, max_k=3, seed=0)
        assert k <= 3

    def test_choose_k_single_cluster_data(self, rng):
        data = rng.normal(0, 0.1, size=(80, 4))
        k, _, _ = choose_k(data, max_k=8, seed=0)
        assert k <= 2

    def test_penalty_weight_shrinks_k(self, rng):
        data, _, _ = blobs(rng, k=4, per=60, spread=1.0, sep=2.5)
        k_soft, _, _ = choose_k(data, max_k=12, seed=0, penalty_weight=0.25)
        k_hard, _, _ = choose_k(data, max_k=12, seed=0, penalty_weight=8.0)
        assert k_hard <= k_soft

    def test_bic_rejects_too_few_points(self, rng):
        data = rng.normal(size=(3, 2))
        result = kmeans(data, 3, seed=0)
        with pytest.raises(ClusteringError):
            bic_score(data, result)

    def test_choose_k_rejects_bad_args(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ClusteringError):
            choose_k(data, max_k=0)
        with pytest.raises(ClusteringError):
            choose_k(data, max_k=3, coverage=0.0)

    def test_perfect_clustering_wins(self):
        # Duplicated points: some k gives zero inertia -> +inf BIC.
        data = np.repeat(np.eye(3), 5, axis=0)
        k, result, scores = choose_k(data, max_k=6, seed=0)
        assert k == 3
        assert result.inertia == pytest.approx(0.0, abs=1e-15)


class TestProjection:
    def test_shapes(self):
        matrix = random_projection_matrix(100, 15, seed=0)
        assert matrix.shape == (100, 15)
        out = project(np.ones((7, 100)), matrix)
        assert out.shape == (7, 15)

    def test_deterministic(self):
        a = random_projection_matrix(50, 15, seed=9)
        b = random_projection_matrix(50, 15, seed=9)
        assert np.array_equal(a, b)

    def test_seed_changes_matrix(self):
        a = random_projection_matrix(50, 15, seed=1)
        b = random_projection_matrix(50, 15, seed=2)
        assert not np.array_equal(a, b)

    def test_distance_preservation_on_average(self, rng):
        data = rng.normal(size=(30, 400))
        matrix = random_projection_matrix(400, 64, seed=0)
        projected = project(data, matrix)
        orig = np.linalg.norm(data[0] - data[1])
        proj = np.linalg.norm(projected[0] - projected[1])
        # 1/sqrt(dim) scaling keeps distances the same order of magnitude.
        assert 0.2 * orig < proj * np.sqrt(400 / 64) / 1.0 < 5.0 * orig

    def test_rejects_dimension_mismatch(self, rng):
        matrix = random_projection_matrix(10, 4)
        with pytest.raises(ClusteringError):
            project(rng.normal(size=(3, 11)), matrix)

    def test_rejects_bad_dims(self):
        with pytest.raises(ClusteringError):
            random_projection_matrix(0, 5)
        with pytest.raises(ClusteringError):
            random_projection_matrix(5, 0)

    def test_rejects_non_2d(self, rng):
        matrix = random_projection_matrix(4, 2)
        with pytest.raises(ClusteringError):
            project(rng.normal(size=4), matrix)
