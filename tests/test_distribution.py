"""Distribution-comparison statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stats.distribution import (
    chi_square_fit,
    kl_divergence,
    total_variation_distance,
)


class TestTotalVariation:
    def test_identical_zero(self):
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_one(self):
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_symmetric(self):
        p, q = [0.7, 0.2, 0.1], [0.4, 0.4, 0.2]
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_unnormalized_inputs(self):
        assert total_variation_distance([7, 3], [70, 30]) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            total_variation_distance([1, 0], [1, 0, 0])

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            total_variation_distance([1, -1], [0.5, 0.5])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.01, 10), min_size=2, max_size=8),
           st.lists(st.floats(0.01, 10), min_size=2, max_size=8))
    def test_property_bounds(self, p, q):
        size = min(len(p), len(q))
        d = total_variation_distance(p[:size], q[:size])
        assert 0.0 <= d <= 1.0


class TestKl:
    def test_identical_zero(self):
        assert kl_divergence([0.3, 0.7], [0.3, 0.7]) == pytest.approx(0.0)

    def test_nonnegative(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_asymmetric(self):
        a = kl_divergence([0.9, 0.1], [0.5, 0.5])
        b = kl_divergence([0.5, 0.5], [0.9, 0.1])
        assert a != pytest.approx(b)

    def test_handles_zero_bins(self):
        assert np.isfinite(kl_divergence([1.0, 0.0], [0.5, 0.5]))


class TestChiSquare:
    def test_perfect_fit(self):
        result = chi_square_fit([500, 300, 200], [0.5, 0.3, 0.2])
        assert result.statistic == pytest.approx(0.0)
        assert result.consistent()

    def test_gross_mismatch_rejected(self):
        result = chi_square_fit([900, 50, 50], [0.3, 0.4, 0.3])
        assert not result.consistent()
        assert result.p_value < 1e-6

    def test_degrees_of_freedom(self):
        result = chi_square_fit([10, 10, 10, 10], [0.25] * 4)
        assert result.degrees_of_freedom == 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            chi_square_fit([1, 2], [0.5, 0.3, 0.2])
        with pytest.raises(SimulationError):
            chi_square_fit([0, 0], [0.5, 0.5])

    def test_sampled_mix_consistent_with_whole(self, quick_pinpoints):
        """End-to-end: the whole run's class counts fit the weighted
        simulation-point distribution at any sane significance level."""
        from repro.experiments.common import measure_points, measure_whole
        from repro.pin import Engine, LdStMix

        out = quick_pinpoints
        mix_tool = LdStMix()
        Engine([mix_tool]).run(out.whole.replay_slices(out.program))
        sampled = measure_points(out, out.regional)
        # Scale counts down: chi-square power grows with n, and our
        # sampled estimate is a model, not the true generator.  TV
        # distance is the primary closeness claim.
        counts = mix_tool.class_counts / 100
        result = chi_square_fit(counts, sampled.mix)
        tv = total_variation_distance(
            mix_tool.class_counts, sampled.mix
        )
        assert tv < 0.01
        assert result.consistent(alpha=1e-4)
