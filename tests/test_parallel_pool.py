"""The deterministic process-pool fan-out."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigError
from repro.parallel import parallel_map, resolve_jobs


def _square(x):
    return x * x


def _sleep_inverse(x):
    # Later submissions finish first, so completion order inverts
    # submission order — the merge must still return input order.
    time.sleep(0.05 * (3 - x))
    return x


def _explode_on_two(x):
    if x == 2:
        raise ValueError("item two is broken")
    return x


class TestResolveJobs:
    def test_auto_detects_cores(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected

    def test_explicit_counts_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    @pytest.mark.parametrize("bad", [-1, -8, True, 1.5, "4"])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            resolve_jobs(bad)


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, range(6), jobs=1) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_single_item_stays_serial(self):
        # A lambda is unpicklable: proof no pool was spun up.
        assert parallel_map(lambda x: x + 1, [41], jobs=4) == [42]

    def test_parallel_results_in_submission_order(self):
        assert parallel_map(_sleep_inverse, [0, 1, 2, 3], jobs=4) == [
            0, 1, 2, 3,
        ]

    def test_parallel_matches_serial(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=3) == parallel_map(
            _square, items, jobs=1
        )

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="item two"):
            parallel_map(_explode_on_two, range(5), jobs=2)

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []
