"""SimPoint analysis, reduction, and variance sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimPointError
from repro.simpoint import (
    SimPointAnalysis,
    SimulationPoint,
    reduce_to_percentile,
    variance_sweep,
)


def synthetic_bbvs(rng, phases=4, slices_per=(40, 30, 20, 10), blocks=60):
    """BBV matrix with known phase structure (disjoint block groups)."""
    rows, labels = [], []
    per_phase = blocks // phases
    for phase, count in enumerate(slices_per[:phases]):
        base = np.zeros(blocks)
        lo = phase * per_phase
        base[lo : lo + per_phase] = rng.dirichlet(np.ones(per_phase))
        for _ in range(count):
            noise = rng.normal(0, 0.003, size=blocks)
            vec = np.clip(base + noise, 0, None)
            rows.append(vec / vec.sum())
            labels.append(phase)
    return np.vstack(rows), np.array(labels)


class TestAnalysis:
    def test_recovers_phase_count(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs)
        assert result.k == 4
        assert result.num_points == 4

    def test_weights_sum_to_one(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs)
        assert result.weights().sum() == pytest.approx(1.0)

    def test_weights_match_cluster_sizes(self, rng):
        bbvs, labels = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs)
        sizes = sorted(p.cluster_size for p in result.points)
        assert sizes == [10, 20, 30, 40]

    def test_representative_belongs_to_its_cluster(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs)
        for point in result.points:
            assert result.labels[point.slice_index] == point.cluster

    def test_representative_has_cluster_phase(self, rng):
        bbvs, labels = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs)
        # Each representative's ground-truth phase is shared by its
        # whole cluster.
        for point in result.points:
            members = labels[result.labels == point.cluster]
            assert (members == labels[point.slice_index]).all()

    def test_custom_slice_indices(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        indices = np.arange(100) * 3 + 7
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs, indices)
        for point in result.points:
            assert (point.slice_index - 7) % 3 == 0

    def test_max_k_caps_clusters(self, rng):
        bbvs, _ = synthetic_bbvs(rng, phases=4)
        result = SimPointAnalysis(max_k=2, seed=0).analyze(bbvs)
        assert result.k <= 2

    def test_deterministic(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        a = SimPointAnalysis(max_k=8, seed=5).analyze(bbvs)
        b = SimPointAnalysis(max_k=8, seed=5).analyze(bbvs)
        assert [p.slice_index for p in a.points] == \
            [p.slice_index for p in b.points]

    def test_bic_scores_exposed(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=6, seed=0).analyze(bbvs)
        assert len(result.bic_scores) == 6

    def test_sorted_by_weight(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        result = SimPointAnalysis(max_k=10, seed=0).analyze(bbvs)
        weights = [p.weight for p in result.sorted_by_weight()]
        assert weights == sorted(weights, reverse=True)

    def test_rejects_empty_matrix(self):
        with pytest.raises(SimPointError):
            SimPointAnalysis().analyze(np.empty((0, 4)))

    def test_rejects_misaligned_indices(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        with pytest.raises(SimPointError):
            SimPointAnalysis().analyze(bbvs, np.arange(5))

    def test_rejects_bad_max_k(self):
        with pytest.raises(SimPointError):
            SimPointAnalysis(max_k=0)


def points_from_weights(weights):
    return [
        SimulationPoint(slice_index=i, cluster=i, weight=w,
                        cluster_size=max(1, int(w * 100)))
        for i, w in enumerate(weights)
    ]


class TestReduction:
    def test_paper_rule_selects_until_threshold(self):
        points = points_from_weights([0.5, 0.3, 0.15, 0.05])
        reduced = reduce_to_percentile(points, 0.9)
        assert [p.slice_index for p in reduced] == [0, 1, 2]

    def test_crossing_point_included(self):
        points = points_from_weights([0.6, 0.35, 0.05])
        reduced = reduce_to_percentile(points, 0.9)
        assert len(reduced) == 2

    def test_full_percentile_keeps_all(self):
        points = points_from_weights([0.4, 0.3, 0.2, 0.1])
        assert len(reduce_to_percentile(points, 1.0)) == 4

    def test_monotone_in_percentile(self):
        points = points_from_weights([0.3, 0.25, 0.2, 0.15, 0.1])
        sizes = [
            len(reduce_to_percentile(points, p))
            for p in (0.3, 0.5, 0.7, 0.9, 1.0)
        ]
        assert sizes == sorted(sizes)

    def test_unnormalized_weights_supported(self):
        points = points_from_weights([5.0, 3.0, 1.5, 0.5])
        reduced = reduce_to_percentile(points, 0.9)
        assert len(reduced) == 3

    def test_descending_order_output(self):
        points = points_from_weights([0.1, 0.5, 0.4])
        reduced = reduce_to_percentile(points, 1.0)
        assert [p.weight for p in reduced] == [0.5, 0.4, 0.1]

    def test_rejects_empty(self):
        with pytest.raises(SimPointError):
            reduce_to_percentile([], 0.9)

    def test_rejects_bad_percentile(self):
        points = points_from_weights([1.0])
        with pytest.raises(SimPointError):
            reduce_to_percentile(points, 0.0)
        with pytest.raises(SimPointError):
            reduce_to_percentile(points, 1.5)

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=30),
        percentile=st.floats(0.05, 1.0),
    )
    def test_property_coverage_reached(self, weights, percentile):
        points = points_from_weights(weights)
        reduced = reduce_to_percentile(points, percentile)
        total = sum(weights)
        covered = sum(p.weight for p in reduced) / total
        assert covered >= percentile - 1e-9
        # Removing the last selected point must drop below the threshold.
        if len(reduced) > 1:
            without_last = covered - reduced[-1].weight / total
            assert without_last < percentile


class TestVarianceSweep:
    def test_variance_decreases_with_k(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        curve = variance_sweep(bbvs, [1, 2, 4, 8])
        assert curve[1] >= curve[2] >= curve[4]
        assert curve[4] >= curve[8] - 1e-12

    def test_k_clipped_to_slices(self, rng):
        bbvs, _ = synthetic_bbvs(rng, phases=2, slices_per=(4, 4))
        curve = variance_sweep(bbvs, [100])
        assert curve[100] == pytest.approx(0.0, abs=1e-9)

    def test_rejects_empty_inputs(self, rng):
        bbvs, _ = synthetic_bbvs(rng)
        with pytest.raises(SimPointError):
            variance_sweep(np.empty((0, 3)), [2])
        with pytest.raises(SimPointError):
            variance_sweep(bbvs, [])
