"""The future-work registry and the projected full-suite experiment."""

import pytest

from repro.errors import UnknownBenchmarkError
from repro.experiments.future_suite import run_future_suite
from repro.workloads.future import (
    FUTURE_WORK,
    full_suite_names,
    get_future_descriptor,
)
from repro.workloads.spec2017 import SPEC_CPU2017, build_program_from_descriptor

from conftest import QUICK


class TestFutureRegistry:
    def test_fourteen_missing_workloads(self):
        assert len(FUTURE_WORK) == 14

    def test_full_suite_is_43(self):
        names = full_suite_names()
        assert len(names) == 43
        assert len(set(names)) == 43

    def test_suite_structure_matches_cpu2017(self):
        # Section II-A: 10 speed INT, 10 rate INT, 10 speed FP, 13 rate FP.
        from repro.workloads.future import FUTURE_WORK

        def count(suite, variant):
            table = sum(
                1 for d in SPEC_CPU2017.values()
                if d.suite == suite and d.variant == variant
            )
            future = sum(
                1 for d in FUTURE_WORK.values()
                if d.suite == suite and d.variant == variant
            )
            return table + future

        assert count("INT", "speed") == 10
        assert count("INT", "rate") == 10
        assert count("FP", "speed") == 10
        assert count("FP", "rate") == 13

    def test_all_projected_flagged(self):
        assert all(d.projected for d in FUTURE_WORK.values())

    def test_siblings_inherit_counts(self):
        bwaves_s = FUTURE_WORK["603.bwaves_s"]
        bwaves_r = SPEC_CPU2017["503.bwaves_r"]
        assert bwaves_s.num_phases == bwaves_r.num_phases
        assert bwaves_s.num_90pct == bwaves_r.num_90pct
        assert bwaves_s.sibling == "503.bwaves_r"

    def test_no_id_collisions_with_table2(self):
        assert not set(FUTURE_WORK) & set(SPEC_CPU2017)

    def test_short_name_lookup(self):
        assert get_future_descriptor("pop2_s").spec_id == "628.pop2_s"

    def test_unknown_rejected(self):
        with pytest.raises(UnknownBenchmarkError):
            get_future_descriptor("999.none")

    def test_projected_programs_buildable(self):
        descriptor = FUTURE_WORK["628.pop2_s"]
        program = build_program_from_descriptor(descriptor, **QUICK)
        assert program.num_phases == descriptor.num_phases
        trace = program.generate_slice(0)
        assert trace.instruction_count > 0


class TestFutureSuiteExperiment:
    def test_projected_subset_consistent(self):
        result = run_future_suite(["628.pop2_s", "627.cam4_s"], **QUICK)
        assert all(r.projected for r in result.rows)
        assert all(r.consistent for r in result.rows)

    def test_mixed_subset(self):
        result = run_future_suite(["620.omnetpp_s", "628.pop2_s"], **QUICK)
        provenance = {r.benchmark: r.projected for r in result.rows}
        assert provenance["620.omnetpp_s"] is False
        assert provenance["628.pop2_s"] is True

    def test_render_marks_projections(self):
        from repro.experiments.future_suite import render_future_suite

        result = run_future_suite(["628.pop2_s"], **QUICK)
        text = render_future_suite(result)
        assert "projected" in text
        assert "not published data" in text
