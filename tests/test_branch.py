"""Branch stream synthesis and table-based predictors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sniper import SniperSimulator
from repro.sniper.branch import (
    BimodalPredictor,
    GSharePredictor,
    StaticTakenPredictor,
    entropy_to_flip_probability,
    simulate_slice_mispredicts,
    synthesize_branch_stream,
)
from repro.workloads.schedule import PhaseSchedule
from repro.workloads.program import SyntheticProgram

from conftest import make_phase


def _binary_entropy(p):
    if p in (0.0, 1.0):
        return 0.0
    return -(p * np.log2(p) + (1 - p) * np.log2(1 - p))


class TestEntropyInversion:
    def test_endpoints(self):
        assert entropy_to_flip_probability(0.0) == 0.0
        assert entropy_to_flip_probability(1.0) == 0.5

    @pytest.mark.parametrize("entropy", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_roundtrip(self, entropy):
        p = entropy_to_flip_probability(entropy)
        assert _binary_entropy(p) == pytest.approx(entropy, abs=1e-6)
        assert 0.0 < p <= 0.5

    def test_monotone(self):
        ps = [entropy_to_flip_probability(h) for h in (0.1, 0.4, 0.8)]
        assert ps == sorted(ps)

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            entropy_to_flip_probability(1.5)

    @settings(max_examples=30, deadline=None)
    @given(entropy=st.floats(0.0, 1.0))
    def test_property_inverse(self, entropy):
        p = entropy_to_flip_probability(entropy)
        assert _binary_entropy(p) == pytest.approx(entropy, abs=1e-5)


def make_trace(entropy, branches=2000, index=0):
    program_trace = None

    from repro.isa.trace import SliceTrace

    return SliceTrace(
        index=index,
        phase_id=0,
        instruction_count=10_000,
        block_counts=np.array([1], dtype=np.int64),
        class_counts=np.array([10_000, 0, 0, 0], dtype=np.int64),
        mem_lines=np.empty(0, dtype=np.int64),
        mem_is_write=np.empty(0, dtype=bool),
        ifetch_lines=np.array([0], dtype=np.int64),
        branch_count=branches,
        branch_entropy=entropy,
    )


class TestStreamSynthesis:
    def test_deterministic_in_slice_index(self):
        trace = make_trace(0.4, index=7)
        a = synthesize_branch_stream(trace)
        b = synthesize_branch_stream(trace)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_different_slices_differ(self):
        a = synthesize_branch_stream(make_trace(0.4, index=1))
        b = synthesize_branch_stream(make_trace(0.4, index=2))
        assert not np.array_equal(a[1], b[1])

    @staticmethod
    def _per_pc_transition_rate(pcs, outcomes):
        transitions = total = 0
        for pc in np.unique(pcs):
            stream = outcomes[pcs == pc].astype(int)
            transitions += np.count_nonzero(np.diff(stream))
            total += max(0, stream.size - 1)
        return transitions / total

    def test_low_entropy_streams_are_stable_per_pc(self):
        pcs, outcomes = synthesize_branch_stream(
            make_trace(0.02, branches=5000)
        )
        assert self._per_pc_transition_rate(pcs, outcomes) < 0.02

    def test_high_entropy_streams_flip_often_per_pc(self):
        pcs, outcomes = synthesize_branch_stream(
            make_trace(1.0, branches=5000)
        )
        assert self._per_pc_transition_rate(pcs, outcomes) > 0.4

    def test_zero_branches(self):
        pcs, outcomes = synthesize_branch_stream(make_trace(0.5, branches=0))
        assert pcs.size == 0 and outcomes.size == 0


class TestPredictors:
    def test_bimodal_learns_stable_stream(self):
        trace = make_trace(0.02, branches=4000)
        mispredicts = simulate_slice_mispredicts(BimodalPredictor(), trace)
        assert mispredicts / trace.branch_count < 0.08

    def test_bimodal_beats_static_on_biased_stream(self):
        trace = make_trace(0.15, branches=4000)
        bimodal = simulate_slice_mispredicts(BimodalPredictor(), trace)
        static = simulate_slice_mispredicts(StaticTakenPredictor(), trace)
        assert bimodal <= static

    def test_predictors_track_entropy(self):
        for predictor_cls in (BimodalPredictor, GSharePredictor):
            calm = simulate_slice_mispredicts(
                predictor_cls(), make_trace(0.05, branches=4000)
            )
            noisy = simulate_slice_mispredicts(
                predictor_cls(), make_trace(0.95, branches=4000)
            )
            assert noisy > calm

    def test_gshare_reset(self):
        predictor = GSharePredictor()
        trace = make_trace(0.5, branches=1000)
        first = simulate_slice_mispredicts(predictor, trace)
        predictor.reset()
        again = simulate_slice_mispredicts(predictor, trace)
        assert first == again

    def test_bad_table_size_rejected(self):
        with pytest.raises(SimulationError):
            BimodalPredictor(table_size=1000)

    def test_bad_history_rejected(self):
        with pytest.raises(SimulationError):
            GSharePredictor(history_bits=0)

    def test_mispredicts_bounded_by_branches(self):
        trace = make_trace(1.0, branches=3000)
        for predictor in (StaticTakenPredictor(), BimodalPredictor(),
                          GSharePredictor()):
            mispredicts = simulate_slice_mispredicts(predictor, trace)
            assert 0 <= mispredicts <= trace.branch_count


class TestSniperWithPredictor:
    def _program(self, entropy):
        phases = [make_phase(0, weight=1.0, branch_entropy=entropy)]
        schedule = PhaseSchedule.from_counts([10], seed=1)
        # Long slices: table predictors need thousands of branches per
        # static branch context before their counters are trained.
        return SyntheticProgram("t", phases, schedule, 30_000, seed=3)

    def test_predictor_mode_runs(self):
        program = self._program(0.3)
        simulator = SniperSimulator(predictor=BimodalPredictor())
        timing = simulator.run_region(program.iter_slices())
        assert timing.cpi > 0
        assert timing.branch_mispredicts > 0

    def test_predictor_mode_tracks_entropy_like_analytic(self):
        for entropy_lo, entropy_hi in ((0.05, 0.8),):
            simulator = SniperSimulator(predictor=GSharePredictor())
            calm = simulator.run_region(
                self._program(entropy_lo).iter_slices()
            )
            simulator = SniperSimulator(predictor=GSharePredictor())
            noisy = simulator.run_region(
                self._program(entropy_hi).iter_slices()
            )
            assert noisy.branch_mispredicts > calm.branch_mispredicts
            assert noisy.cpi > calm.cpi
