"""The ReproError exception hierarchy and its message contracts."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ClusteringError,
    ConfigError,
    LintError,
    PinballError,
    ReplayMismatchError,
    ReproError,
    SimPointError,
    SimulationError,
    UnknownBenchmarkError,
    WorkloadError,
)

#: child -> direct parent; the full shipped tree.
HIERARCHY = {
    ConfigError: ReproError,
    WorkloadError: ReproError,
    UnknownBenchmarkError: WorkloadError,
    ClusteringError: ReproError,
    SimPointError: ReproError,
    PinballError: ReproError,
    ReplayMismatchError: PinballError,
    SimulationError: ReproError,
    LintError: ReproError,
}


class TestHierarchy:
    @pytest.mark.parametrize(
        "child,parent", HIERARCHY.items(),
        ids=[c.__name__ for c in HIERARCHY],
    )
    def test_direct_parent(self, child, parent):
        assert child.__bases__ == (parent,)

    @pytest.mark.parametrize(
        "child", HIERARCHY, ids=[c.__name__ for c in HIERARCHY]
    )
    def test_single_catch_clause_suffices(self, child):
        if child is UnknownBenchmarkError:
            exc = child("999.nope_r", ["505.mcf_r"])
        else:
            exc = child("boom")
        with pytest.raises(ReproError):
            raise exc

    def test_base_does_not_leak_programming_errors(self):
        assert not issubclass(TypeError, ReproError)
        assert not issubclass(ReproError, (ValueError, RuntimeError))

    def test_all_hierarchy_classes_exported_from_package(self):
        for cls in (*HIERARCHY, ReproError):
            if cls is ReplayMismatchError:
                continue  # implementation detail of the pinball layer
            assert cls.__name__ in repro.__all__
            assert getattr(repro, cls.__name__) is cls


class TestUnknownBenchmarkMessage:
    def test_message_names_offender_and_registry(self):
        exc = UnknownBenchmarkError("999.nope_r", ["505.mcf_r", "557.xz_r"])
        message = str(exc)
        assert message == (
            "unknown benchmark '999.nope_r'; known benchmarks: "
            "505.mcf_r, 557.xz_r"
        )

    def test_attributes_preserved(self):
        exc = UnknownBenchmarkError("x", ("a", "b"))
        assert exc.name == "x"
        assert exc.known == ["a", "b"]

    def test_raised_by_the_registry(self):
        from repro.workloads import get_descriptor

        with pytest.raises(UnknownBenchmarkError) as excinfo:
            get_descriptor("000.missing_s")
        assert "000.missing_s" in str(excinfo.value)


class TestLintError:
    def test_lint_error_is_repro_error(self):
        assert issubclass(LintError, ReproError)

    def test_raised_for_unknown_rule(self):
        from repro.lint import get_rule

        with pytest.raises(LintError) as excinfo:
            get_rule("REP999")
        assert "REP999" in str(excinfo.value)
