"""End-to-end PinPoints pipeline."""

import pytest

from repro.pinball import RegionalPinball, WholePinball
from repro.pinpoints import run_pinpoints
from repro.workloads.spec2017 import get_descriptor

from conftest import QUICK


class TestPipeline:
    def test_output_structure(self, quick_pinpoints):
        out = quick_pinpoints
        assert out.benchmark == "620.omnetpp_s"
        assert isinstance(out.whole, WholePinball)
        assert all(isinstance(p, RegionalPinball) for p in out.regional)
        assert out.whole.num_slices == QUICK["total_slices"]

    def test_one_pinball_per_point(self, quick_pinpoints):
        out = quick_pinpoints
        assert len(out.regional) == out.simpoints.num_points

    def test_reduced_subset_of_regional(self, quick_pinpoints):
        out = quick_pinpoints
        regional_starts = {p.region_start for p in out.regional}
        reduced_starts = {p.region_start for p in out.reduced}
        assert reduced_starts <= regional_starts
        assert len(out.reduced) <= len(out.regional)

    def test_reduced_covers_ninety_percent(self, quick_pinpoints):
        covered = sum(p.weight for p in quick_pinpoints.reduced)
        assert covered >= 0.9

    def test_weights_sum_to_one(self, quick_pinpoints):
        total = sum(p.weight for p in quick_pinpoints.regional)
        assert total == pytest.approx(1.0)

    def test_recovers_table2_counts_quick(self, quick_pinpoints):
        descriptor = get_descriptor("620.omnetpp_s")
        assert quick_pinpoints.simpoints.k == descriptor.num_phases
        assert len(quick_pinpoints.reduced) == descriptor.num_90pct

    def test_points_are_valid_slices(self, quick_pinpoints):
        out = quick_pinpoints
        for point in out.simpoints.points:
            assert 0 <= point.slice_index < out.program.num_slices

    def test_custom_percentile(self):
        out = run_pinpoints("557.xz_r", percentile=0.5, **QUICK)
        covered = sum(p.weight for p in out.reduced)
        assert covered >= 0.5
        assert len(out.reduced) < len(out.regional)

    def test_warmup_slices_override(self):
        out = run_pinpoints("620.omnetpp_s", warmup_slices=3, **QUICK)
        assert all(p.warmup_slices == 3 for p in out.regional)

    def test_replayer_shares_program(self, quick_pinpoints):
        replayer = quick_pinpoints.replayer()
        assert replayer._resolve(quick_pinpoints.whole) is \
            quick_pinpoints.program

    def test_short_name_accepted(self):
        out = run_pinpoints("omnetpp_s", **QUICK)
        assert out.benchmark == "620.omnetpp_s"
